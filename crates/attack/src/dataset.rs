//! From wiretap traces to training data.
//!
//! The adversary's observable information per returned value: the scalars
//! the open component sent to the hidden component earlier in the *same
//! activation/instance session* (plus this call's own arguments). The paper:
//! "the adversary must assume that it is dependent upon all the variables
//! whose values are sent to the hidden component from the open component."

use hps_ir::{ComponentId, FragLabel, Value};
use hps_runtime::Trace;

/// One training sample for a call site.
#[derive(Clone, PartialEq, Debug)]
pub struct Sample {
    /// Candidate inputs: the most recent scalars sent on this session, this
    /// call's arguments last, padded with zeros to the dataset's arity.
    pub inputs: Vec<f64>,
    /// The returned value.
    pub label: f64,
}

/// All observations for one `(component, label)` call site.
#[derive(Clone, PartialEq, Debug)]
pub struct Dataset {
    /// The component addressed.
    pub component: ComponentId,
    /// The fragment label addressed.
    pub label: FragLabel,
    /// Input arity (the window of recently sent values considered).
    pub arity: usize,
    /// The samples, in observation order.
    pub samples: Vec<Sample>,
}

fn value_to_f64(v: Value) -> f64 {
    match v {
        Value::Int(i) => i as f64,
        Value::Float(f) => f,
        Value::Bool(b) => f64::from(u8::from(b)),
    }
}

impl Dataset {
    /// Builds the dataset for one call site from a trace.
    ///
    /// `window` is the number of most recently sent scalars the adversary
    /// includes as candidate inputs (they do not know the true arity; a
    /// window over the session history approximates "all values sent").
    pub fn from_trace(
        trace: &Trace,
        component: ComponentId,
        label: FragLabel,
        window: usize,
    ) -> Dataset {
        let mut samples = Vec::new();
        for key in trace.keys_of(component) {
            // Re-walk the session, accumulating sent values.
            let mut sent: Vec<f64> = Vec::new();
            for e in trace.session(component, key) {
                for &a in &e.args {
                    sent.push(value_to_f64(a));
                }
                if e.label == label {
                    let start = sent.len().saturating_sub(window);
                    let mut inputs: Vec<f64> = sent[start..].to_vec();
                    while inputs.len() < window {
                        inputs.insert(0, 0.0);
                    }
                    samples.push(Sample {
                        inputs,
                        label: value_to_f64(e.ret),
                    });
                }
            }
        }
        Dataset {
            component,
            label,
            arity: window,
            samples,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples were observed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Splits into training and held-out validation parts (3:1,
    /// interleaved so both parts cover the observation period).
    pub fn split(&self) -> (Vec<&Sample>, Vec<&Sample>) {
        let mut train = Vec::new();
        let mut holdout = Vec::new();
        for (i, s) in self.samples.iter().enumerate() {
            if i % 4 == 3 {
                holdout.push(s);
            } else {
                train.push(s);
            }
        }
        (train, holdout)
    }

    /// Drops constant input columns and exact duplicates of earlier
    /// columns (they carry no information and bloat the monomial basis);
    /// returns the reduced dataset and the kept column indices.
    pub fn reduce(&self) -> (Dataset, Vec<usize>) {
        if self.samples.is_empty() {
            return (self.clone(), Vec::new());
        }
        let arity = self.arity;
        let first = &self.samples[0].inputs;
        let mut keep: Vec<usize> = Vec::new();
        for (j, &first_j) in first.iter().enumerate().take(arity) {
            let varies = self.samples.iter().any(|s| s.inputs[j] != first_j);
            let duplicate = keep
                .iter()
                .any(|&k| self.samples.iter().all(|s| s.inputs[j] == s.inputs[k]));
            if varies && !duplicate {
                keep.push(j);
            }
        }
        let samples = self
            .samples
            .iter()
            .map(|s| Sample {
                inputs: keep.iter().map(|&j| s.inputs[j]).collect(),
                label: s.label,
            })
            .collect();
        (
            Dataset {
                component: self.component,
                label: self.label,
                arity: keep.len(),
                samples,
            },
            keep,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hps_runtime::TraceEvent;

    fn ev(key: u64, label: u32, args: Vec<i64>, ret: i64) -> TraceEvent {
        TraceEvent {
            seq: 0,
            component: ComponentId::new(0),
            key,
            label: FragLabel::new(label as usize),
            args: args.into_iter().map(Value::Int).collect(),
            ret: Value::Int(ret),
        }
    }

    #[test]
    fn sessions_accumulate_sent_values() {
        let trace = Trace {
            events: vec![
                ev(1, 0, vec![2, 3], 0), // send x=2, y=3
                ev(1, 1, vec![], 9),     // leak: f(2,3) = 9
                ev(2, 0, vec![5, 7], 0),
                ev(2, 1, vec![], 26),
            ],
        };
        let ds = Dataset::from_trace(&trace, ComponentId::new(0), FragLabel::new(1), 2);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.samples[0].inputs, vec![2.0, 3.0]);
        assert_eq!(ds.samples[0].label, 9.0);
        assert_eq!(ds.samples[1].inputs, vec![5.0, 7.0]);
    }

    #[test]
    fn window_pads_and_truncates() {
        let trace = Trace {
            events: vec![
                ev(1, 0, vec![1], 0),
                ev(1, 0, vec![2], 0),
                ev(1, 0, vec![3], 0),
                ev(1, 1, vec![], 42),
            ],
        };
        let ds = Dataset::from_trace(&trace, ComponentId::new(0), FragLabel::new(1), 2);
        assert_eq!(ds.samples[0].inputs, vec![2.0, 3.0]);
        let ds = Dataset::from_trace(&trace, ComponentId::new(0), FragLabel::new(1), 5);
        assert_eq!(ds.samples[0].inputs, vec![0.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn split_is_three_to_one() {
        let trace = Trace {
            events: (0..8).map(|i| ev(1, 0, vec![i], i)).collect(),
        };
        let ds = Dataset::from_trace(&trace, ComponentId::new(0), FragLabel::new(0), 1);
        let (train, holdout) = ds.split();
        assert_eq!(train.len(), 6);
        assert_eq!(holdout.len(), 2);
    }

    #[test]
    fn reduce_drops_constant_columns() {
        let trace = Trace {
            events: vec![
                ev(1, 0, vec![7, 1], 1),
                ev(2, 0, vec![7, 2], 2),
                ev(3, 0, vec![7, 3], 3),
            ],
        };
        let ds = Dataset::from_trace(&trace, ComponentId::new(0), FragLabel::new(0), 2);
        let (reduced, keep) = ds.reduce();
        assert_eq!(keep, vec![1]);
        assert_eq!(reduced.arity, 1);
        assert_eq!(reduced.samples[2].inputs, vec![3.0]);
    }
}
