//! The escalation driver.
//!
//! "First the adversary does not know the complexity of hidden code and
//! hence he must try all of the above techniques" (§3). The driver runs the
//! hypothesis ladder — constant → linear → polynomial(2..) → rational(1..)
//! — over a call site's dataset and reports the first model that validates
//! on held-out observations, or failure.

use crate::dataset::Dataset;
use crate::models::{Model, ModelClass};
use hps_ir::{ComponentId, FragLabel};
use hps_runtime::Trace;

/// Attack parameters.
#[derive(Clone, Debug)]
pub struct AttackConfig {
    /// How many recently sent scalars count as candidate inputs.
    pub window: usize,
    /// Highest polynomial degree attempted.
    pub max_poly_degree: u32,
    /// Highest rational numerator/denominator degree attempted.
    pub max_rational_degree: u32,
    /// Minimum samples before attempting recovery at all.
    pub min_samples: usize,
}

impl Default for AttackConfig {
    fn default() -> AttackConfig {
        AttackConfig {
            window: 6,
            max_poly_degree: 4,
            max_rational_degree: 2,
            min_samples: 8,
        }
    }
}

/// The verdict for one call site.
#[derive(Clone, PartialEq, Debug)]
pub enum Verdict {
    /// A model validated on held-out data: the ILP is broken.
    Recovered(Model),
    /// Every hypothesis class failed.
    Resistant {
        /// Classes that were attempted.
        tried: Vec<ModelClass>,
    },
    /// Not enough observations to attempt recovery.
    InsufficientData {
        /// Samples observed.
        observed: usize,
        /// Samples required.
        required: usize,
    },
}

impl Verdict {
    /// Did the adversary break this ILP?
    pub fn is_recovered(&self) -> bool {
        matches!(self, Verdict::Recovered(_))
    }
}

/// Result of attacking one call site.
#[derive(Clone, PartialEq, Debug)]
pub struct AttackOutcome {
    /// The component addressed.
    pub component: ComponentId,
    /// The fragment label addressed.
    pub label: FragLabel,
    /// Samples available.
    pub samples: usize,
    /// The verdict.
    pub verdict: Verdict,
}

/// Attacks one call site of a trace.
pub fn attack_site(
    trace: &Trace,
    component: ComponentId,
    label: FragLabel,
    config: &AttackConfig,
) -> AttackOutcome {
    let full = Dataset::from_trace(trace, component, label, config.window);
    let samples = full.len();
    if samples < config.min_samples {
        return AttackOutcome {
            component,
            label,
            samples,
            verdict: Verdict::InsufficientData {
                observed: samples,
                required: config.min_samples,
            },
        };
    }
    let (ds, _kept) = full.reduce();
    let (train, holdout) = ds.split();
    let mut ladder: Vec<ModelClass> = vec![ModelClass::Constant, ModelClass::Linear];
    for d in 2..=config.max_poly_degree {
        ladder.push(ModelClass::Polynomial(d));
    }
    for d in 1..=config.max_rational_degree {
        ladder.push(ModelClass::Rational(d));
    }
    let mut tried = Vec::new();
    for class in ladder {
        tried.push(class);
        if let Some(model) = Model::fit(class, ds.arity, &train) {
            if model.validates(&holdout) {
                return AttackOutcome {
                    component,
                    label,
                    samples,
                    verdict: Verdict::Recovered(model),
                };
            }
        }
    }
    AttackOutcome {
        component,
        label,
        samples,
        verdict: Verdict::Resistant { tried },
    }
}

/// Attacks every call site observed in a trace.
///
/// # Examples
///
/// ```
/// use hps_attack::{attack_trace, AttackConfig, Verdict};
/// use hps_ir::{ComponentId, FragLabel, Value};
/// use hps_runtime::{Trace, TraceEvent};
///
/// // Synthetic wiretap: each session sends x then observes 2x + 1.
/// let mut trace = Trace::default();
/// for k in 0..40i64 {
///     trace.events.push(TraceEvent {
///         seq: k as u64, component: ComponentId::new(0), key: k as u64,
///         label: FragLabel::new(0), args: vec![Value::Int(k)],
///         ret: Value::Int(2 * k + 1),
///     });
/// }
/// let outcomes = attack_trace(&trace, &AttackConfig::default());
/// assert!(matches!(outcomes[0].verdict, Verdict::Recovered(_)));
/// ```
pub fn attack_trace(trace: &Trace, config: &AttackConfig) -> Vec<AttackOutcome> {
    trace
        .call_sites()
        .into_iter()
        .map(|(c, l)| attack_site(trace, c, l, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hps_ir::Value;
    use hps_runtime::TraceEvent;

    /// A synthetic trace: per session k, send (x, y), then observe leaks
    /// through three "fragments": linear (L1), quadratic (L2), and a
    /// path-dependent arbitrary one (L3).
    fn synthetic_trace(n: usize) -> Trace {
        let mut events = Vec::new();
        for k in 0..n {
            let x = (k % 11) as i64 + 1;
            let y = (k % 7) as i64 + 2;
            let key = k as u64;
            let push = |events: &mut Vec<TraceEvent>, label: usize, args: Vec<i64>, ret: i64| {
                events.push(TraceEvent {
                    seq: events.len() as u64,
                    component: ComponentId::new(0),
                    key,
                    label: FragLabel::new(label),
                    args: args.into_iter().map(Value::Int).collect(),
                    ret: Value::Int(ret),
                });
            };
            push(&mut events, 0, vec![x, y], 0);
            push(&mut events, 1, vec![], 3 * x + 2 * y - 5);
            push(&mut events, 2, vec![], x * x + x * y);
            // Path-dependent: parity of an (unobserved) hidden state.
            let hidden = (x * 31 + y * 17) % 13;
            push(&mut events, 3, vec![], if hidden % 2 == 0 { x } else { -y });
        }
        Trace { events }
    }

    #[test]
    fn linear_and_polynomial_sites_are_recovered() {
        let trace = synthetic_trace(120);
        let cfg = AttackConfig::default();
        let lin = attack_site(&trace, ComponentId::new(0), FragLabel::new(1), &cfg);
        assert!(lin.verdict.is_recovered(), "{:?}", lin.verdict);
        if let Verdict::Recovered(m) = &lin.verdict {
            assert_eq!(m.class, ModelClass::Linear);
        }
        let poly = attack_site(&trace, ComponentId::new(0), FragLabel::new(2), &cfg);
        assert!(poly.verdict.is_recovered(), "{:?}", poly.verdict);
        if let Verdict::Recovered(m) = &poly.verdict {
            assert!(matches!(m.class, ModelClass::Polynomial(_)));
        }
    }

    #[test]
    fn path_dependent_site_resists() {
        let trace = synthetic_trace(160);
        let cfg = AttackConfig::default();
        let out = attack_site(&trace, ComponentId::new(0), FragLabel::new(3), &cfg);
        assert!(
            matches!(out.verdict, Verdict::Resistant { .. }),
            "{:?}",
            out.verdict
        );
    }

    #[test]
    fn few_samples_is_insufficient_data() {
        let trace = synthetic_trace(3);
        let cfg = AttackConfig::default();
        let out = attack_site(&trace, ComponentId::new(0), FragLabel::new(1), &cfg);
        assert!(matches!(out.verdict, Verdict::InsufficientData { .. }));
    }

    #[test]
    fn attack_trace_covers_all_sites() {
        let trace = synthetic_trace(60);
        let outcomes = attack_trace(&trace, &AttackConfig::default());
        assert_eq!(outcomes.len(), 4);
        let recovered = outcomes.iter().filter(|o| o.verdict.is_recovered()).count();
        // L0 returns constant 0, L1 linear, L2 quadratic; L3 resists.
        assert_eq!(recovered, 3);
    }
}
