//! Hypothesis classes: constant, linear, polynomial, rational.
//!
//! Each class fits its coefficients on training samples and counts as
//! *recovered* only when it predicts the held-out samples exactly (integer
//! leaks) or within a tight relative tolerance (float leaks) — a wrong but
//! plausible model is no recovery.

use crate::dataset::Sample;
use crate::linalg::Matrix;

/// The model family, mirroring the paper's arithmetic-complexity types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelClass {
    /// `f() = c`
    Constant,
    /// `f(x) = c₀ + Σ cᵢ xᵢ`
    Linear,
    /// A multivariate polynomial of the given total degree.
    Polynomial(u32),
    /// A ratio of polynomials of the given numerator/denominator degree.
    Rational(u32),
}

impl std::fmt::Display for ModelClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelClass::Constant => write!(f, "constant"),
            ModelClass::Linear => write!(f, "linear"),
            ModelClass::Polynomial(d) => write!(f, "polynomial(deg {d})"),
            ModelClass::Rational(d) => write!(f, "rational(deg {d})"),
        }
    }
}

/// A fitted model.
#[derive(Clone, PartialEq, Debug)]
pub struct Model {
    /// Which family it belongs to.
    pub class: ModelClass,
    /// Number of inputs.
    pub arity: usize,
    /// Coefficients over the monomial basis (numerator then denominator
    /// for rational models).
    pub coeffs: Vec<f64>,
}

/// Multi-indices of total degree ≤ `degree` over `arity` variables, in a
/// deterministic order; index 0 is the constant monomial.
pub fn monomials(arity: usize, degree: u32) -> Vec<Vec<u32>> {
    let mut out = vec![vec![0; arity]];
    for _ in 0..degree {
        let mut next = Vec::new();
        for m in &out {
            // Extend by one more factor of each variable with index ≥ the
            // last raised one, to enumerate each multiset once.
            let start = m.iter().rposition(|&e| e > 0).unwrap_or(0);
            for v in start..arity {
                let mut m2 = m.clone();
                m2[v] += 1;
                if !next.contains(&m2) && !out.contains(&m2) {
                    next.push(m2);
                }
            }
        }
        out.extend(next);
    }
    out
}

fn eval_monomial(m: &[u32], x: &[f64]) -> f64 {
    m.iter().zip(x).map(|(&e, &xi)| xi.powi(e as i32)).product()
}

fn design_matrix(samples: &[&Sample], mons: &[Vec<u32>]) -> Matrix {
    let rows: Vec<Vec<f64>> = samples
        .iter()
        .map(|s| mons.iter().map(|m| eval_monomial(m, &s.inputs)).collect())
        .collect();
    Matrix::from_rows(&rows)
}

impl Model {
    /// Fits a model of `class` on training samples; `None` when the system
    /// is unsolvable or there is too little data.
    pub fn fit(class: ModelClass, arity: usize, train: &[&Sample]) -> Option<Model> {
        match class {
            ModelClass::Constant => {
                let first = train.first()?.label;
                if train.iter().all(|s| s.label == first) {
                    Some(Model {
                        class,
                        arity,
                        coeffs: vec![first],
                    })
                } else {
                    None
                }
            }
            ModelClass::Linear => Self::fit_poly(class, arity, 1, train),
            ModelClass::Polynomial(d) => Self::fit_poly(class, arity, d, train),
            ModelClass::Rational(d) => Self::fit_rational(arity, d, train),
        }
    }

    fn fit_poly(class: ModelClass, arity: usize, degree: u32, train: &[&Sample]) -> Option<Model> {
        let mons = monomials(arity, degree);
        if train.len() < mons.len() {
            return None;
        }
        let a = design_matrix(train, &mons);
        let b: Vec<f64> = train.iter().map(|s| s.label).collect();
        let coeffs = a.least_squares(&b)?;
        Some(Model {
            class,
            arity,
            coeffs,
        })
    }

    /// Rational fit: find P, Q with `y·Q(x) − P(x) = 0` (a homogeneous
    /// linear system in the coefficients of P and Q).
    fn fit_rational(arity: usize, degree: u32, train: &[&Sample]) -> Option<Model> {
        let mons = monomials(arity, degree);
        let n = mons.len();
        if train.len() < 2 * n {
            return None;
        }
        let rows: Vec<Vec<f64>> = train
            .iter()
            .map(|s| {
                let mut row = Vec::with_capacity(2 * n);
                // -P coefficients…
                for m in &mons {
                    row.push(-eval_monomial(m, &s.inputs));
                }
                // …plus y·Q coefficients.
                for m in &mons {
                    row.push(s.label * eval_monomial(m, &s.inputs));
                }
                row
            })
            .collect();
        let a = Matrix::from_rows(&rows);
        let coeffs = a.null_vector()?;
        Some(Model {
            class: ModelClass::Rational(degree),
            arity,
            coeffs,
        })
    }

    /// Predicts the label for one input vector; `None` when undefined
    /// (rational with a vanishing denominator).
    pub fn predict(&self, x: &[f64]) -> Option<f64> {
        match self.class {
            ModelClass::Constant => Some(self.coeffs[0]),
            ModelClass::Linear => {
                let mons = monomials(self.arity, 1);
                Some(
                    mons.iter()
                        .zip(&self.coeffs)
                        .map(|(m, c)| c * eval_monomial(m, x))
                        .sum(),
                )
            }
            ModelClass::Polynomial(d) => {
                let mons = monomials(self.arity, d);
                Some(
                    mons.iter()
                        .zip(&self.coeffs)
                        .map(|(m, c)| c * eval_monomial(m, x))
                        .sum(),
                )
            }
            ModelClass::Rational(d) => {
                let mons = monomials(self.arity, d);
                let n = mons.len();
                let p: f64 = mons
                    .iter()
                    .zip(&self.coeffs[..n])
                    .map(|(m, c)| c * eval_monomial(m, x))
                    .sum();
                let q: f64 = mons
                    .iter()
                    .zip(&self.coeffs[n..])
                    .map(|(m, c)| c * eval_monomial(m, x))
                    .sum();
                if q.abs() < 1e-12 {
                    None
                } else {
                    Some(p / q)
                }
            }
        }
    }

    /// Validates the model on held-out samples: every prediction must match
    /// exactly (after rounding, for integer-valued labels) or within a
    /// `1e-6` relative tolerance.
    pub fn validates(&self, holdout: &[&Sample]) -> bool {
        if holdout.is_empty() {
            return false;
        }
        holdout.iter().all(|s| match self.predict(&s.inputs) {
            None => false,
            Some(pred) => {
                let integral = s.label.fract() == 0.0 && s.label.abs() < 2f64.powi(52);
                if integral {
                    (pred - s.label).abs() < 0.5 && pred.round() == s.label
                } else {
                    let scale = s.label.abs().max(1.0);
                    (pred - s.label).abs() / scale < 1e-6
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(f: impl Fn(f64, f64) -> f64, n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| {
                let x = (i % 7) as f64 + 1.0;
                let y = (i / 7) as f64 + 2.0;
                Sample {
                    inputs: vec![x, y],
                    label: f(x, y),
                }
            })
            .collect()
    }

    fn fit_and_check(class: ModelClass, f: impl Fn(f64, f64) -> f64) -> bool {
        let all = samples(f, 60);
        let refs: Vec<&Sample> = all.iter().collect();
        let (train, holdout) = (refs[..45].to_vec(), refs[45..].to_vec());
        match Model::fit(class, 2, &train) {
            Some(m) => m.validates(&holdout),
            None => false,
        }
    }

    #[test]
    fn monomial_enumeration() {
        let m = monomials(2, 2);
        // 1, x, y, x², xy, y²
        assert_eq!(m.len(), 6);
        assert!(m.contains(&vec![0, 0]));
        assert!(m.contains(&vec![1, 1]));
        assert!(m.contains(&vec![2, 0]));
        assert_eq!(monomials(3, 1).len(), 4);
    }

    #[test]
    fn recovers_constant_and_rejects_nonconstant() {
        assert!(fit_and_check(ModelClass::Constant, |_, _| 5.0));
        assert!(!fit_and_check(ModelClass::Constant, |x, _| x));
    }

    #[test]
    fn recovers_linear() {
        assert!(fit_and_check(ModelClass::Linear, |x, y| 3.0 * x + y - 7.0));
        // A quadratic is NOT validated by a linear model.
        assert!(!fit_and_check(ModelClass::Linear, |x, y| x * y));
    }

    #[test]
    fn recovers_polynomial() {
        assert!(fit_and_check(ModelClass::Polynomial(2), |x, y| {
            x * x + 2.0 * x * y - y + 1.0
        }));
        assert!(!fit_and_check(ModelClass::Polynomial(2), |x, y| {
            x * x * x + y
        }));
    }

    #[test]
    fn recovers_rational() {
        assert!(fit_and_check(ModelClass::Rational(1), |x, y| {
            (2.0 * x + 1.0) / (y + 3.0)
        }));
    }

    #[test]
    fn does_not_recover_exponential() {
        assert!(!fit_and_check(ModelClass::Linear, |x, _| x.exp()));
        assert!(!fit_and_check(ModelClass::Polynomial(3), |x, _| x.exp()));
        assert!(!fit_and_check(ModelClass::Rational(2), |x, y| {
            x.exp() + y
        }));
    }

    #[test]
    fn integer_labels_validate_by_rounding() {
        let all = samples(|x, y| 2.0 * x + y, 40);
        let refs: Vec<&Sample> = all.iter().collect();
        let m = Model::fit(ModelClass::Linear, 2, &refs[..30]).unwrap();
        assert!(m.validates(&refs[30..]));
    }
}
