//! Dense linear algebra for the recovery models.

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq, Debug)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `Aᵀ·A` (for the normal equations).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in 0..self.cols {
                let mut s = 0.0;
                for k in 0..self.rows {
                    s += self[(k, i)] * self[(k, j)];
                }
                g[(i, j)] = s;
            }
        }
        g
    }

    /// `Aᵀ·b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != rows`.
    pub fn transpose_mul_vec(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.rows, "dimension mismatch");
        (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self[(i, j)] * b[i]).sum())
            .collect()
    }

    /// `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * x[j]).sum())
            .collect()
    }

    /// Solves `self · x = b` by Gaussian elimination with partial pivoting.
    /// Returns `None` for (numerically) singular systems.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve needs a square matrix");
        assert_eq!(b.len(), self.rows, "dimension mismatch");
        let n = self.rows;
        let mut a = self.clone();
        let mut x: Vec<f64> = b.to_vec();
        for col in 0..n {
            // Pivot.
            let (pivot_row, pivot_val) = (col..n)
                .map(|r| (r, a[(r, col)].abs()))
                .max_by(|l, r| l.1.total_cmp(&r.1))
                .expect("non-empty range");
            if pivot_val < 1e-9 {
                return None;
            }
            if pivot_row != col {
                for j in 0..n {
                    let t = a[(col, j)];
                    a[(col, j)] = a[(pivot_row, j)];
                    a[(pivot_row, j)] = t;
                }
                x.swap(col, pivot_row);
            }
            // Eliminate below.
            for r in col + 1..n {
                let factor = a[(r, col)] / a[(col, col)];
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    let v = a[(col, j)];
                    a[(r, j)] -= factor * v;
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            x[col] /= a[(col, col)];
            for r in 0..col {
                x[r] -= a[(r, col)] * x[col];
                a[(r, col)] = 0.0;
            }
        }
        Some(x)
    }

    /// Least-squares solution of `self · x ≈ b` via the normal equations
    /// with Tikhonov damping for rank-deficient systems.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != rows`.
    pub fn least_squares(&self, b: &[f64]) -> Option<Vec<f64>> {
        let mut gram = self.gram();
        let rhs = self.transpose_mul_vec(b);
        // Damping relative to the gram's scale keeps rank-deficient systems
        // (e.g. duplicated feature columns) solvable; the driver validates
        // exactness on held-out data anyway, so the tiny bias is harmless.
        let scale = (0..gram.cols)
            .map(|i| gram[(i, i)].abs())
            .fold(0.0f64, f64::max)
            .max(1.0);
        for i in 0..gram.cols {
            gram[(i, i)] += 1e-8 * scale;
        }
        gram.solve(&rhs)
    }

    /// A unit-norm vector `x` with `self · x ≈ 0`, found by inverse-free
    /// elimination: fixes the free variable with the largest residual
    /// freedom to 1 and solves for the rest. Returns `None` when only the
    /// trivial solution exists (full column rank).
    pub fn null_vector(&self) -> Option<Vec<f64>> {
        let n = self.cols;
        // Try fixing each column to 1, solve the least squares for the
        // remaining coefficients, and keep the best residual.
        let mut best: Option<(f64, Vec<f64>)> = None;
        for fixed in 0..n {
            let mut reduced_rows = Vec::with_capacity(self.rows);
            let mut rhs = Vec::with_capacity(self.rows);
            for i in 0..self.rows {
                let mut row = Vec::with_capacity(n - 1);
                for j in 0..n {
                    if j != fixed {
                        row.push(self[(i, j)]);
                    }
                }
                reduced_rows.push(row);
                rhs.push(-self[(i, fixed)]);
            }
            let reduced = Matrix::from_rows(&reduced_rows);
            if let Some(sol) = reduced.least_squares(&rhs) {
                let mut full = Vec::with_capacity(n);
                let mut k = 0;
                for j in 0..n {
                    if j == fixed {
                        full.push(1.0);
                    } else {
                        full.push(sol[k]);
                        k += 1;
                    }
                }
                let residual: f64 = self
                    .mul_vec(&full)
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>()
                    .sqrt();
                if best.as_ref().is_none_or(|(r, _)| residual < *r) {
                    best = Some((residual, full));
                }
            }
        }
        best.map(|(_, v)| v)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_systems() {
        // 2x + y = 5; x - y = 1  =>  x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let x = a.solve(&[5.0, 1.0]).expect("solvable");
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 2.0]), None);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[3.0, 4.0]).expect("solvable with pivoting");
        assert!((x[0] - 4.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_recovers_exact_fit() {
        // y = 3 + 2a - b over 5 samples.
        let rows: Vec<Vec<f64>> = (0..5)
            .map(|i| vec![1.0, i as f64, (i * i) as f64 % 3.0])
            .collect();
        let a = Matrix::from_rows(&rows);
        let truth = [3.0, 2.0, -1.0];
        let b = a.mul_vec(&truth);
        let x = a.least_squares(&b).expect("solvable");
        for (got, want) in x.iter().zip(truth) {
            assert!((got - want).abs() < 1e-5, "{x:?}");
        }
    }

    #[test]
    fn null_vector_of_rank_deficient_matrix() {
        // Rows all orthogonal to (1, -1, 0).
        let a = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.0],
            vec![2.0, 2.0, 1.0],
            vec![3.0, 3.0, -1.0],
        ]);
        let v = a.null_vector().expect("null vector exists");
        let r = a.mul_vec(&v);
        let norm: f64 = r.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm < 1e-6, "residual {norm}, v = {v:?}");
    }

    #[test]
    fn indexing_round_trips() {
        let mut m = Matrix::zeros(2, 3);
        m[(1, 2)] = 7.0;
        assert_eq!(m[(1, 2)], 7.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }
}
