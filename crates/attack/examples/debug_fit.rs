//! Debug: why does a quadratic leak resist the polynomial fit?

use hps_attack::dataset::{Dataset, Sample};
use hps_attack::models::{Model, ModelClass};

fn main() {
    // Mimic the attack_demo L3 dataset: features [x, y, x, y, z] (dup cols),
    // label = 3x^2 + xy + yz.
    let mut samples = Vec::new();
    for run in 0..200i64 {
        let (x, y, z) = ((run % 13) + 1, (run % 7) + 2, (run % 11) + 3);
        samples.push(Sample {
            inputs: vec![x as f64, y as f64, x as f64, y as f64, z as f64],
            label: (3 * x * x + x * y + y * z) as f64,
        });
    }
    let ds = Dataset {
        component: hps_ir::ComponentId::new(0),
        label: hps_ir::FragLabel::new(0),
        arity: 5,
        samples,
    };
    let (red, keep) = ds.reduce();
    println!("kept cols: {keep:?}, arity {}", red.arity);
    let (train, holdout) = red.split();
    for d in 2..=4u32 {
        match Model::fit(ModelClass::Polynomial(d), red.arity, &train) {
            Some(m) => {
                let ok = m.validates(&holdout);
                let errs: Vec<f64> = holdout
                    .iter()
                    .take(5)
                    .map(|s| m.predict(&s.inputs).unwrap() - s.label)
                    .collect();
                println!("poly({d}): fit ok, validates={ok}, sample errors {errs:?}");
            }
            None => println!("poly({d}): fit failed (needs more samples or singular)"),
        }
    }
}
