//! Content-addressed memo table for provably-pure hidden fragments.
//!
//! The `hps-analysis::effects` lattice proves some fragments `Pure`: their
//! outcome (returned value *and* virtual cost) is a function of the call's
//! arguments alone — no hidden state is read or written and no trap can
//! fire. For those fragments, re-execution with repeated arguments is
//! wasted secure-device work. A [`MemoTable`] caches `(value, cost)` per
//! `(component, fragment, encoded argument bytes)` so the server can answer
//! repeats without running the fragment.
//!
//! ## Adversary invariance
//!
//! A memo hit must be indistinguishable from an execution — to the client,
//! the wiretap, telemetry cross-checks and `chaos_equivalence`. The server
//! therefore still:
//!
//! * charges the cached virtual cost to `cost_spent` and the call reply;
//! * counts the call in `calls_served`;
//! * fires the same `Event::Fragment { cost }`;
//! * creates/touches the per-activation hidden state entry, so activation
//!   lifecycles and release semantics are unchanged.
//!
//! Hit/miss/eviction counts surface only through the dedicated
//! `hps_server_memo_*` counters, which are reliability telemetry like
//! retries — never part of the adversary-visible trace.
//!
//! ## Soundness
//!
//! * Only lattice-`Pure` fragments are cached ([`MemoTable::is_memoizable`]
//!   is a per-fragment mask fixed at construction). Conservative: a pure
//!   loop is `MayTrap` (step limit) and stays uncached.
//! * Only *successful* outcomes are cached, so error paths always
//!   re-execute and trap behaviour is never masked.
//! * Keys encode argument values exactly like the wire protocol
//!   (`Int`/`Float`/`Bool` tags + little-endian payload), so two argument
//!   lists collide only if the secure device would also see identical
//!   request bytes.
//!
//! Like [`crate::bytecode::VmCache`], one table is shared per
//! [`crate::server::SecureServer`] and per shard (`Arc<MemoTable>` in
//! `ShardCounters`, surviving executor respawns), and like
//! `server::ReplayCache` it is bounded, FIFO-evicting with eviction
//! counting. The same caveat as the VM applies: the table answers for the
//! cost model it was filled under — rebuild it when the cost model changes.

use hps_analysis::effects::{Effect, FragmentEffects};
use hps_ir::{HiddenProgram, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Reads `HPS_FRAGMENT_MEMO`: memoization is on by default, `0`/`false`/
/// `off`/`no` disable it (used by `ExecConfig`, `SecureServer` and
/// `SessionServer` defaults; `hps run/serve --no-memo` overrides directly).
/// Mirrors [`crate::bytecode::vm_enabled_by_default`].
pub fn memo_enabled_by_default() -> bool {
    match std::env::var("HPS_FRAGMENT_MEMO") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off" | "no"
        ),
        Err(_) => true,
    }
}

/// Default bound on cached results per table.
pub const DEFAULT_MEMO_CAPACITY: usize = 4096;

type Key = (usize, usize, Vec<u8>);

#[derive(Debug, Default)]
struct MemoInner {
    map: HashMap<Key, (Value, u64)>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<Key>,
}

/// Bounded content-addressed cache of pure-fragment outcomes.
///
/// Thread-safe: the map sits behind a `Mutex` (fragment execution it
/// short-circuits is far more expensive than the lock), counters are
/// relaxed atomics readable from stats threads.
#[derive(Debug)]
pub struct MemoTable {
    /// `memoizable[component][position]` — fixed at construction from the
    /// effect analysis.
    memoizable: Vec<Vec<bool>>,
    inner: Mutex<MemoInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl MemoTable {
    /// A table for `hidden` with the default capacity, running the effect
    /// analysis to mark the memoizable fragments.
    pub fn for_program(hidden: &HiddenProgram) -> MemoTable {
        MemoTable::with_capacity(hidden, DEFAULT_MEMO_CAPACITY)
    }

    /// A table bounded to `capacity` cached results (clamped to ≥ 1).
    pub fn with_capacity(hidden: &HiddenProgram, capacity: usize) -> MemoTable {
        let effects = FragmentEffects::compute(hidden);
        let memoizable = hidden
            .components
            .iter()
            .enumerate()
            .map(|(c, comp)| {
                (0..comp.fragments.len())
                    .map(|p| effects.effect(c, p).is_some_and(Effect::is_memoizable))
                    .collect()
            })
            .collect();
        MemoTable {
            memoizable,
            inner: Mutex::new(MemoInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Whether the effect analysis proved the fragment at `(component,
    /// position)` pure. Out-of-range coordinates are not memoizable.
    pub fn is_memoizable(&self, component: usize, position: usize) -> bool {
        self.memoizable
            .get(component)
            .and_then(|c| c.get(position))
            .copied()
            .unwrap_or(false)
    }

    /// Number of fragments the mask marks memoizable.
    pub fn memoizable_count(&self) -> usize {
        self.memoizable
            .iter()
            .map(|c| c.iter().filter(|&&b| b).count())
            .sum()
    }

    /// Looks up a cached outcome, counting a hit on success. Returns
    /// `None` (without counting anything — misses are counted by
    /// [`MemoTable::record_miss`] only after an execution *succeeds*) for
    /// non-memoizable fragments or unseen arguments.
    pub fn lookup(
        &self,
        component: usize,
        position: usize,
        args: &[Value],
    ) -> Option<(Value, u64)> {
        if !self.is_memoizable(component, position) {
            return None;
        }
        let key = (component, position, encode_args(args));
        let inner = self.inner.lock().expect("memo table lock");
        let out = inner.map.get(&key).copied();
        drop(inner);
        if out.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Caches a successful outcome for a memoizable fragment, returning
    /// the number of entries evicted to stay within capacity. No-op for
    /// non-memoizable fragments.
    pub fn insert(
        &self,
        component: usize,
        position: usize,
        args: &[Value],
        value: Value,
        cost: u64,
    ) -> u64 {
        if !self.is_memoizable(component, position) {
            return 0;
        }
        let key = (component, position, encode_args(args));
        let mut inner = self.inner.lock().expect("memo table lock");
        let mut evicted = 0u64;
        if inner.map.insert(key.clone(), (value, cost)).is_none() {
            inner.order.push_back(key);
            while inner.map.len() > self.capacity {
                let Some(old) = inner.order.pop_front() else {
                    break;
                };
                inner.map.remove(&old);
                evicted += 1;
            }
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        evicted
    }

    /// Counts one memo miss. The server calls this after every
    /// *successful* fragment execution (memoizable or not), so
    /// `hits + misses == fragments_total` reconciles exactly.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Calls answered from the table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Successful executions not answered from the table.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cached results evicted by the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Cached results currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("memo table lock").map.len()
    }

    /// Whether the table holds no cached results.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Encodes an argument list exactly like the wire protocol encodes values
/// (`crate::wire`): tag byte + little-endian payload per value. Floats key
/// on their bit pattern, so `-0.0` and `0.0` are distinct keys — sound,
/// merely conservative.
fn encode_args(args: &[Value]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(args.len() * 9);
    for v in args {
        match *v {
            Value::Int(i) => {
                buf.push(0x00);
                buf.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                buf.push(0x01);
                buf.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Bool(b) => {
                buf.push(0x02);
                buf.push(u8::from(b));
            }
        }
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use hps_ir::{
        Block, ComponentId, ComponentKind, Expr, FragLabel, Fragment, HiddenComponent, LocalId, Ty,
    };

    /// One component, no hidden vars, two fragments: L0 pure (`ret p0+p0`),
    /// L1 trapping (`ret p0 / p0`).
    fn pure_and_trap_program() -> HiddenProgram {
        let frag = |label: usize, ret: Expr| Fragment {
            label: FragLabel::new(label),
            params: vec![("p0".into(), Ty::Int)],
            body: Block::of(vec![]),
            ret: Some(ret),
        };
        let mut hidden = HiddenProgram::new();
        hidden.add(HiddenComponent {
            id: ComponentId::new(0),
            kind: ComponentKind::Function {
                func_name: "f".into(),
            },
            vars: vec![],
            fragments: vec![
                frag(
                    0,
                    Expr::binary(
                        hps_ir::BinOp::Add,
                        Expr::local(LocalId::new(0)),
                        Expr::local(LocalId::new(0)),
                    ),
                ),
                frag(
                    1,
                    Expr::binary(
                        hps_ir::BinOp::Div,
                        Expr::local(LocalId::new(0)),
                        Expr::local(LocalId::new(0)),
                    ),
                ),
            ],
        });
        hidden
    }

    #[test]
    fn masks_follow_the_effect_analysis() {
        let t = MemoTable::for_program(&pure_and_trap_program());
        assert!(t.is_memoizable(0, 0));
        assert!(!t.is_memoizable(0, 1), "division may trap");
        assert!(!t.is_memoizable(7, 0), "out of range");
        assert_eq!(t.memoizable_count(), 1);
    }

    #[test]
    fn lookup_insert_roundtrip_counts_hits() {
        let t = MemoTable::for_program(&pure_and_trap_program());
        let args = [Value::Int(21)];
        assert_eq!(t.lookup(0, 0, &args), None);
        t.insert(0, 0, &args, Value::Int(42), 17);
        t.record_miss();
        assert_eq!(t.lookup(0, 0, &args), Some((Value::Int(42), 17)));
        assert_eq!(t.lookup(0, 0, &[Value::Int(2)]), None);
        assert_eq!((t.hits(), t.misses()), (1, 1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn non_memoizable_fragments_are_never_cached() {
        let t = MemoTable::for_program(&pure_and_trap_program());
        let args = [Value::Int(3)];
        assert_eq!(t.insert(0, 1, &args, Value::Int(1), 5), 0);
        assert_eq!(t.lookup(0, 1, &args), None);
        assert!(t.is_empty());
        assert_eq!(t.hits(), 0);
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let t = MemoTable::with_capacity(&pure_and_trap_program(), 2);
        for i in 0..3 {
            t.insert(0, 0, &[Value::Int(i)], Value::Int(2 * i), 1);
        }
        assert_eq!(t.evictions(), 1);
        assert_eq!(t.len(), 2);
        // The oldest entry is gone, the newer ones answer.
        assert_eq!(t.lookup(0, 0, &[Value::Int(0)]), None);
        assert!(t.lookup(0, 0, &[Value::Int(2)]).is_some());
    }

    #[test]
    fn argument_encoding_distinguishes_types_and_bits() {
        let t = MemoTable::for_program(&pure_and_trap_program());
        t.insert(0, 0, &[Value::Int(1)], Value::Int(2), 1);
        assert_eq!(t.lookup(0, 0, &[Value::Bool(true)]), None);
        assert_eq!(t.lookup(0, 0, &[Value::Float(1.0)]), None);
        t.insert(0, 0, &[Value::Float(0.0)], Value::Int(0), 1);
        assert_eq!(t.lookup(0, 0, &[Value::Float(-0.0)]), None);
    }

    #[test]
    fn env_gate_parses_like_the_vm_gate() {
        // Only exercises the parser on the current (unset) environment;
        // the CI reliability matrix pins the env-var behaviour end to end.
        let _ = memo_enabled_by_default();
    }
}
