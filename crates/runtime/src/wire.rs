//! Binary wire protocol for the TCP transport.
//!
//! Hand-rolled, little-endian, length-prefixed frames:
//!
//! ```text
//! frame    := u32 payload_len ++ payload
//! request  := 0x01 call(component:u32 key:u64 label:u32 argc:u16 arg*)
//!           | 0x02 release(component:u32 key:u64)
//!           | 0x03 shutdown
//! response := 0x10 reply(value:arg server_cost:u64)
//!           | 0x11 error(len:u32 utf8-bytes)
//! arg      := 0x00 i64 | 0x01 f64-bits | 0x02 u8-bool
//! ```

use crate::error::RuntimeError;
use hps_ir::{ComponentId, FragLabel, Value};
use std::io::{Read, Write};

/// A request from the open side.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// Run a fragment.
    Call {
        /// Addressed component.
        component: ComponentId,
        /// Activation / instance key.
        key: u64,
        /// Fragment label.
        label: FragLabel,
        /// Scalar arguments.
        args: Vec<Value>,
    },
    /// Free one activation/instance's hidden state.
    Release {
        /// Addressed component.
        component: ComponentId,
        /// Activation / instance key.
        key: u64,
    },
    /// Stop serving this connection.
    Shutdown,
}

/// A response from the secure side.
#[derive(Clone, PartialEq, Debug)]
pub enum Response {
    /// Successful fragment execution.
    Reply {
        /// Returned scalar.
        value: Value,
        /// Virtual cost the secure device spent.
        server_cost: u64,
    },
    /// Secure-side failure, as display text.
    Error(String),
}

fn push_value(buf: &mut Vec<u8>, v: Value) {
    match v {
        Value::Int(i) => {
            buf.push(0x00);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(0x01);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Bool(b) => {
            buf.push(0x02);
            buf.push(u8::from(b));
        }
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RuntimeError> {
        if self.pos + n > self.data.len() {
            return Err(RuntimeError::Channel("truncated frame".into()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, RuntimeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, RuntimeError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, RuntimeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, RuntimeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, RuntimeError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn value(&mut self) -> Result<Value, RuntimeError> {
        match self.u8()? {
            0x00 => Ok(Value::Int(self.i64()?)),
            0x01 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            0x02 => Ok(Value::Bool(self.u8()? != 0)),
            t => Err(RuntimeError::Channel(format!("bad value tag 0x{t:02x}"))),
        }
    }

    fn done(&self) -> Result<(), RuntimeError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(RuntimeError::Channel("trailing bytes in frame".into()))
        }
    }
}

impl Request {
    /// Serializes the request payload (without the frame length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Call {
                component,
                key,
                label,
                args,
            } => {
                buf.push(0x01);
                buf.extend_from_slice(&component.0.to_le_bytes());
                buf.extend_from_slice(&key.to_le_bytes());
                buf.extend_from_slice(&label.0.to_le_bytes());
                buf.extend_from_slice(&(args.len() as u16).to_le_bytes());
                for &a in args {
                    push_value(&mut buf, a);
                }
            }
            Request::Release { component, key } => {
                buf.push(0x02);
                buf.extend_from_slice(&component.0.to_le_bytes());
                buf.extend_from_slice(&key.to_le_bytes());
            }
            Request::Shutdown => buf.push(0x03),
        }
        buf
    }

    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Channel`] for malformed frames.
    pub fn decode(data: &[u8]) -> Result<Request, RuntimeError> {
        let mut r = Reader { data, pos: 0 };
        let req = match r.u8()? {
            0x01 => {
                let component = ComponentId(r.u32()?);
                let key = r.u64()?;
                let label = FragLabel(r.u32()?);
                let argc = r.u16()? as usize;
                let mut args = Vec::with_capacity(argc);
                for _ in 0..argc {
                    args.push(r.value()?);
                }
                Request::Call {
                    component,
                    key,
                    label,
                    args,
                }
            }
            0x02 => Request::Release {
                component: ComponentId(r.u32()?),
                key: r.u64()?,
            },
            0x03 => Request::Shutdown,
            t => return Err(RuntimeError::Channel(format!("bad request tag 0x{t:02x}"))),
        };
        r.done()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes the response payload (without the frame length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Reply { value, server_cost } => {
                buf.push(0x10);
                push_value(&mut buf, *value);
                buf.extend_from_slice(&server_cost.to_le_bytes());
            }
            Response::Error(msg) => {
                buf.push(0x11);
                let bytes = msg.as_bytes();
                buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                buf.extend_from_slice(bytes);
            }
        }
        buf
    }

    /// Parses a response payload.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Channel`] for malformed frames.
    pub fn decode(data: &[u8]) -> Result<Response, RuntimeError> {
        let mut r = Reader { data, pos: 0 };
        let resp = match r.u8()? {
            0x10 => {
                let value = r.value()?;
                let server_cost = r.u64()?;
                Response::Reply { value, server_cost }
            }
            0x11 => {
                let len = r.u32()? as usize;
                let bytes = r.take(len)?;
                Response::Error(
                    String::from_utf8(bytes.to_vec())
                        .map_err(|_| RuntimeError::Channel("bad utf8 in error".into()))?,
                )
            }
            t => return Err(RuntimeError::Channel(format!("bad response tag 0x{t:02x}"))),
        };
        r.done()?;
        Ok(resp)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Returns [`RuntimeError::Channel`] on I/O failure.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), RuntimeError> {
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len)
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| RuntimeError::Channel(format!("write failed: {e}")))
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// Returns [`RuntimeError::Channel`] on I/O failure, mid-frame EOF or
/// oversized frames (> 16 MiB).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, RuntimeError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(RuntimeError::Channel(format!("read failed: {e}"))),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > 16 * 1024 * 1024 {
        return Err(RuntimeError::Channel(format!("oversized frame: {len}")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| RuntimeError::Channel(format!("read failed: {e}")))?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let reqs = [
            Request::Call {
                component: ComponentId::new(3),
                key: 42,
                label: FragLabel::new(7),
                args: vec![Value::Int(-5), Value::Float(2.5), Value::Bool(true)],
            },
            Request::Release {
                component: ComponentId::new(0),
                key: u64::MAX,
            },
            Request::Shutdown,
        ];
        for req in reqs {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trip() {
        let resps = [
            Response::Reply {
                value: Value::Float(f64::NAN),
                server_cost: 9,
            },
            Response::Error("boom — unicode ok".into()),
        ];
        for resp in resps {
            let bytes = resp.encode();
            let decoded = Response::decode(&bytes).unwrap();
            // NaN != NaN, compare via encoding.
            assert_eq!(decoded.encode(), bytes);
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xff]).is_err());
        assert!(Response::decode(&[0x10, 0x07]).is_err());
        // Trailing junk.
        let mut good = Request::Shutdown.encode();
        good.push(0);
        assert!(Request::decode(&good).is_err());
    }

    #[test]
    fn frames_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn mid_frame_eof_is_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
