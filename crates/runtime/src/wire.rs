//! Binary wire protocol for the TCP transport.
//!
//! Hand-rolled, little-endian, length-prefixed frames:
//!
//! ```text
//! frame    := u32 payload_len ++ payload
//! request  := 0x01 call(component:u32 key:u64 label:u32 argc:u16 arg*)
//!           | 0x02 release(component:u32 key:u64)
//!           | 0x03 shutdown
//!           | 0x04 batch(count:u16 call-body*)     ; call-body as in 0x01
//!           | 0x05 hello(version:u8 session:u64)
//!           | 0x06 seq-call(seq:u64 call-body)
//!           | 0x07 seq-batch(seq:u64 count:u16 call-body*)
//! response := 0x10 reply(value:arg server_cost:u64)
//!           | 0x11 error(len:u32 utf8-bytes)
//!           | 0x12 batch(count:u16 reply-body*)    ; reply-body as in 0x10
//!           | 0x13 hello-ack(version:u8 session:u64 next_seq:u64)
//! arg      := 0x00 i64 | 0x01 f64-bits | 0x02 u8-bool
//! ```
//!
//! A `0x04` batch carries a run of coalesced logical calls in one round
//! trip and is answered by one `0x12` batch with a reply per call, in
//! order. A failing call inside a batch turns the whole response into
//! `0x11 error`.
//!
//! ## Sessions and exactly-once replay
//!
//! The `0x05`/`0x13` handshake opens (or resumes) a *session*: the client
//! names a 64-bit session id and the protocol version it speaks
//! ([`WIRE_VERSION`]); the server acknowledges with the next sequence
//! number it expects, so a reconnecting client can detect what the server
//! already saw. Within a session, call traffic uses the sequenced frames
//! `0x06`/`0x07`: the per-session monotonic `seq` lets the server
//! deduplicate a retransmitted call whose response was lost (it replays
//! the cached response instead of re-executing) and reject sequence gaps.
//! The unsequenced `0x01`/`0x04` frames remain valid for fire-and-forget
//! single-connection deployments.

use crate::channel::{CallReply, PendingCall};
use crate::error::RuntimeError;
use hps_ir::{ComponentId, FragLabel, Value};
use std::io::{Read, Write};

/// Version byte exchanged in the `Hello` handshake. Bump on any
/// incompatible framing change; the server rejects mismatches as terminal.
pub const WIRE_VERSION: u8 = 2;

/// A request from the open side.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// Run a fragment.
    Call {
        /// Addressed component.
        component: ComponentId,
        /// Activation / instance key.
        key: u64,
        /// Fragment label.
        label: FragLabel,
        /// Scalar arguments.
        args: Vec<Value>,
    },
    /// Free one activation/instance's hidden state.
    Release {
        /// Addressed component.
        component: ComponentId,
        /// Activation / instance key.
        key: u64,
    },
    /// Stop serving this connection.
    Shutdown,
    /// Run a batch of logical calls in order, one round trip.
    Batch(Vec<PendingCall>),
    /// Open or resume a session (first frame on a reliable connection).
    Hello {
        /// Protocol version the client speaks ([`WIRE_VERSION`]).
        version: u8,
        /// Client-chosen session id; reconnects reuse it to resume.
        session: u64,
    },
    /// A sequenced call within a session (supports exactly-once replay).
    SeqCall {
        /// Per-session monotonic sequence number (starts at 1).
        seq: u64,
        /// The logical call.
        call: PendingCall,
    },
    /// A sequenced batch within a session; the whole batch is one
    /// sequence-numbered unit (it is retransmitted atomically).
    SeqBatch {
        /// Per-session monotonic sequence number (starts at 1).
        seq: u64,
        /// The logical calls, in order.
        calls: Vec<PendingCall>,
    },
}

/// A response from the secure side.
#[derive(Clone, PartialEq, Debug)]
pub enum Response {
    /// Successful fragment execution.
    Reply {
        /// Returned scalar.
        value: Value,
        /// Virtual cost the secure device spent.
        server_cost: u64,
    },
    /// Secure-side failure, as display text.
    Error(String),
    /// One reply per call of a [`Request::Batch`], in order.
    Batch(Vec<CallReply>),
    /// Acknowledges a [`Request::Hello`], completing the handshake.
    HelloAck {
        /// Protocol version the server speaks.
        version: u8,
        /// The session id echoed back.
        session: u64,
        /// Next sequence number the server expects (1 for a new session).
        next_seq: u64,
    },
}

fn push_value(buf: &mut Vec<u8>, v: Value) {
    match v {
        Value::Int(i) => {
            buf.push(0x00);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(0x01);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Bool(b) => {
            buf.push(0x02);
            buf.push(u8::from(b));
        }
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RuntimeError> {
        if self.pos + n > self.data.len() {
            return Err(RuntimeError::Channel("truncated frame".into()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, RuntimeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, RuntimeError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, RuntimeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, RuntimeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, RuntimeError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn value(&mut self) -> Result<Value, RuntimeError> {
        match self.u8()? {
            0x00 => Ok(Value::Int(self.i64()?)),
            0x01 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            0x02 => Ok(Value::Bool(self.u8()? != 0)),
            t => Err(RuntimeError::Channel(format!("bad value tag 0x{t:02x}"))),
        }
    }

    fn done(&self) -> Result<(), RuntimeError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(RuntimeError::Channel("trailing bytes in frame".into()))
        }
    }
}

fn push_call_body(
    buf: &mut Vec<u8>,
    component: ComponentId,
    key: u64,
    label: FragLabel,
    args: &[Value],
) {
    buf.extend_from_slice(&component.0.to_le_bytes());
    buf.extend_from_slice(&key.to_le_bytes());
    buf.extend_from_slice(&label.0.to_le_bytes());
    buf.extend_from_slice(&(args.len() as u16).to_le_bytes());
    for &a in args {
        push_value(buf, a);
    }
}

impl Request {
    /// Serializes the request payload (without the frame length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Serializes into a caller-provided buffer (cleared first), so a
    /// long-lived connection can reuse one allocation per direction.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        match self {
            Request::Call {
                component,
                key,
                label,
                args,
            } => {
                buf.push(0x01);
                push_call_body(buf, *component, *key, *label, args);
            }
            Request::Release { component, key } => {
                buf.push(0x02);
                buf.extend_from_slice(&component.0.to_le_bytes());
                buf.extend_from_slice(&key.to_le_bytes());
            }
            Request::Shutdown => buf.push(0x03),
            Request::Batch(calls) => {
                buf.push(0x04);
                buf.extend_from_slice(&(calls.len() as u16).to_le_bytes());
                for c in calls {
                    push_call_body(buf, c.component, c.key, c.label, &c.args);
                }
            }
            Request::Hello { version, session } => {
                buf.push(0x05);
                buf.push(*version);
                buf.extend_from_slice(&session.to_le_bytes());
            }
            Request::SeqCall { seq, call } => {
                buf.push(0x06);
                buf.extend_from_slice(&seq.to_le_bytes());
                push_call_body(buf, call.component, call.key, call.label, &call.args);
            }
            Request::SeqBatch { seq, calls } => {
                buf.push(0x07);
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.extend_from_slice(&(calls.len() as u16).to_le_bytes());
                for c in calls {
                    push_call_body(buf, c.component, c.key, c.label, &c.args);
                }
            }
        }
    }

    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Channel`] for malformed frames.
    pub fn decode(data: &[u8]) -> Result<Request, RuntimeError> {
        let mut r = Reader { data, pos: 0 };
        let req = match r.u8()? {
            0x01 => {
                let c = read_call_body(&mut r)?;
                Request::Call {
                    component: c.component,
                    key: c.key,
                    label: c.label,
                    args: c.args,
                }
            }
            0x02 => Request::Release {
                component: ComponentId(r.u32()?),
                key: r.u64()?,
            },
            0x03 => Request::Shutdown,
            0x04 => {
                let count = r.u16()? as usize;
                let mut calls = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    calls.push(read_call_body(&mut r)?);
                }
                Request::Batch(calls)
            }
            0x05 => Request::Hello {
                version: r.u8()?,
                session: r.u64()?,
            },
            0x06 => Request::SeqCall {
                seq: r.u64()?,
                call: read_call_body(&mut r)?,
            },
            0x07 => {
                let seq = r.u64()?;
                let count = r.u16()? as usize;
                let mut calls = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    calls.push(read_call_body(&mut r)?);
                }
                Request::SeqBatch { seq, calls }
            }
            t => return Err(RuntimeError::Channel(format!("bad request tag 0x{t:02x}"))),
        };
        r.done()?;
        Ok(req)
    }
}

fn read_call_body(r: &mut Reader<'_>) -> Result<PendingCall, RuntimeError> {
    let component = ComponentId(r.u32()?);
    let key = r.u64()?;
    let label = FragLabel(r.u32()?);
    let argc = r.u16()? as usize;
    let mut args = Vec::with_capacity(argc.min(1024));
    for _ in 0..argc {
        args.push(r.value()?);
    }
    Ok(PendingCall {
        component,
        key,
        label,
        args,
    })
}

impl Response {
    /// Serializes the response payload (without the frame length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Serializes into a caller-provided buffer (cleared first), so a
    /// long-lived connection can reuse one allocation per direction.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        match self {
            Response::Reply { value, server_cost } => {
                buf.push(0x10);
                push_value(buf, *value);
                buf.extend_from_slice(&server_cost.to_le_bytes());
            }
            Response::Error(msg) => {
                buf.push(0x11);
                let bytes = msg.as_bytes();
                buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                buf.extend_from_slice(bytes);
            }
            Response::Batch(replies) => {
                buf.push(0x12);
                buf.extend_from_slice(&(replies.len() as u16).to_le_bytes());
                for reply in replies {
                    push_value(buf, reply.value);
                    buf.extend_from_slice(&reply.server_cost.to_le_bytes());
                }
            }
            Response::HelloAck {
                version,
                session,
                next_seq,
            } => {
                buf.push(0x13);
                buf.push(*version);
                buf.extend_from_slice(&session.to_le_bytes());
                buf.extend_from_slice(&next_seq.to_le_bytes());
            }
        }
    }

    /// Parses a response payload.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Channel`] for malformed frames.
    pub fn decode(data: &[u8]) -> Result<Response, RuntimeError> {
        let mut r = Reader { data, pos: 0 };
        let resp = match r.u8()? {
            0x10 => {
                let value = r.value()?;
                let server_cost = r.u64()?;
                Response::Reply { value, server_cost }
            }
            0x11 => {
                let len = r.u32()? as usize;
                let bytes = r.take(len)?;
                Response::Error(
                    String::from_utf8(bytes.to_vec())
                        .map_err(|_| RuntimeError::Channel("bad utf8 in error".into()))?,
                )
            }
            0x12 => {
                let count = r.u16()? as usize;
                let mut replies = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let value = r.value()?;
                    let server_cost = r.u64()?;
                    replies.push(CallReply { value, server_cost });
                }
                Response::Batch(replies)
            }
            0x13 => Response::HelloAck {
                version: r.u8()?,
                session: r.u64()?,
                next_seq: r.u64()?,
            },
            t => return Err(RuntimeError::Channel(format!("bad response tag 0x{t:02x}"))),
        };
        r.done()?;
        Ok(resp)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Returns [`RuntimeError::Transport`] on I/O failure (classified via
/// [`crate::error::FaultClass::of_io`]).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), RuntimeError> {
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len)
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| RuntimeError::transport("write", &e))
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// Returns [`RuntimeError::Transport`] on I/O failure or mid-frame EOF
/// (both retryable — a dying peer can cut a frame anywhere), and
/// [`RuntimeError::Channel`] on oversized frames (> 16 MiB), which no
/// retry can fix.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, RuntimeError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(RuntimeError::transport("read", &e)),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > 16 * 1024 * 1024 {
        return Err(RuntimeError::Channel(format!("oversized frame: {len}")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| RuntimeError::transport("read", &e))?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let reqs = [
            Request::Call {
                component: ComponentId::new(3),
                key: 42,
                label: FragLabel::new(7),
                args: vec![Value::Int(-5), Value::Float(2.5), Value::Bool(true)],
            },
            Request::Release {
                component: ComponentId::new(0),
                key: u64::MAX,
            },
            Request::Shutdown,
        ];
        for req in reqs {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trip() {
        let resps = [
            Response::Reply {
                value: Value::Float(f64::NAN),
                server_cost: 9,
            },
            Response::Error("boom — unicode ok".into()),
        ];
        for resp in resps {
            let bytes = resp.encode();
            let decoded = Response::decode(&bytes).unwrap();
            // NaN != NaN, compare via encoding.
            assert_eq!(decoded.encode(), bytes);
        }
    }

    #[test]
    fn batch_round_trip() {
        let req = Request::Batch(vec![
            PendingCall {
                component: ComponentId::new(1),
                key: 7,
                label: FragLabel::new(2),
                args: vec![Value::Int(3), Value::Bool(false)],
            },
            PendingCall {
                component: ComponentId::new(0),
                key: 0,
                label: FragLabel::new(0),
                args: vec![],
            },
        ]);
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        let resp = Response::Batch(vec![
            CallReply {
                value: Value::Bool(true),
                server_cost: 4,
            },
            CallReply {
                value: Value::Int(-1),
                server_cost: 0,
            },
        ]);
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        // An empty batch is legal on the wire even if the interpreter
        // never sends one.
        let empty = Request::Batch(Vec::new());
        assert_eq!(Request::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn encode_into_reuses_buffer() {
        let mut buf = Vec::with_capacity(64);
        Request::Shutdown.encode_into(&mut buf);
        assert_eq!(Request::decode(&buf).unwrap(), Request::Shutdown);
        let req = Request::Release {
            component: ComponentId::new(1),
            key: 2,
        };
        req.encode_into(&mut buf);
        assert_eq!(Request::decode(&buf).unwrap(), req);
    }

    #[test]
    fn session_frames_round_trip() {
        let reqs = [
            Request::Hello {
                version: WIRE_VERSION,
                session: 0xdead_beef_cafe_f00d,
            },
            Request::SeqCall {
                seq: 17,
                call: PendingCall {
                    component: ComponentId::new(2),
                    key: 9,
                    label: FragLabel::new(4),
                    args: vec![Value::Int(11), Value::Bool(false)],
                },
            },
            Request::SeqBatch {
                seq: u64::MAX,
                calls: vec![PendingCall {
                    component: ComponentId::new(0),
                    key: 0,
                    label: FragLabel::new(0),
                    args: vec![],
                }],
            },
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
        let ack = Response::HelloAck {
            version: WIRE_VERSION,
            session: 42,
            next_seq: 7,
        };
        assert_eq!(Response::decode(&ack.encode()).unwrap(), ack);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xff]).is_err());
        assert!(Response::decode(&[0x10, 0x07]).is_err());
        // Trailing junk.
        let mut good = Request::Shutdown.encode();
        good.push(0);
        assert!(Request::decode(&good).is_err());
        // Truncated session frames fail cleanly too.
        let hello = Request::Hello {
            version: WIRE_VERSION,
            session: 1,
        }
        .encode();
        for cut in 0..hello.len() {
            assert!(Request::decode(&hello[..cut]).is_err(), "cut at {cut}");
        }
        assert!(Response::decode(&[0x13, 0x02]).is_err());
    }

    #[test]
    fn frames_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn mid_frame_eof_is_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(6);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
