//! TCP transport: run the hidden component in another process or on
//! another machine, as in the paper's evaluation ("ran them on two separate
//! linux based machines that communicated over the local area network").
//!
//! Frames are the [`crate::wire`] protocol. Each connection keeps a
//! persistent buffered reader/writer pair and reuses one encode buffer, so
//! steady-state calls perform no per-call allocation for framing. Batched
//! calls ([`Channel::call_batch`]) travel as one `Request::Batch` frame and
//! count as a single interaction.
//!
//! ## Reliability layer
//!
//! Two cooperating halves make the transport survive flaky links and
//! server restarts without changing the adversary-visible interaction
//! sequence (DESIGN.md §7b):
//!
//! * **Client** — [`TcpChannel::connect_reliable`] opens a *session*
//!   (`Hello`/`HelloAck` handshake, version-checked), applies read/write
//!   timeouts from its [`RetryPolicy`], and sends every logical round trip
//!   as a sequenced frame. On a retryable fault it reconnects with
//!   exponential backoff plus deterministic jitter (vendored rand shim)
//!   and retransmits the same sequence number.
//! * **Server** — [`SessionServer`] accepts many clients (thread per
//!   connection), keys one [`SecureServer`] per session id, and
//!   deduplicates retransmits through a [`crate::server::ReplayCache`] of
//!   encoded response frames: a retried call whose response was lost is answered
//!   from the cache, never re-executed. Sequence gaps are terminal.
//!   Sessions execute on a pool of shard threads ([`crate::shard`]), each
//!   owning the state of the sessions hashed to it — lock-free hidden
//!   execution that scales with cores while keeping every per-session
//!   guarantee above.
//!
//! Retries, reconnects and replays are visible only in
//! [`Channel::transport_stats`] — never in [`Channel::interactions`],
//! server-side call counts, or [`crate::trace::TraceChannel`] events.

use crate::channel::{CallReply, Channel, PendingCall, TransportStats};
use crate::error::{FaultClass, RuntimeError};
use crate::fault::CrashConfig;
use crate::server::SecureServer;
use crate::shard::{ExecMsg, ShardConfig, ShardPool, ShardSenders, StatsInner};
use crate::wire::{read_frame, write_frame, Request, Response, WIRE_VERSION};
use hps_ir::{ComponentId, FragLabel, HiddenProgram, Value};
use hps_telemetry::{metrics::names, Event, Histogram, MetricsSnapshot, RecorderHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client-side retry configuration for [`TcpChannel::connect_reliable`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Attempts per logical round trip (including the first).
    pub max_attempts: u32,
    /// First backoff delay; attempt `n` waits `base_backoff · 2ⁿ` plus
    /// jitter drawn from `[0, base_backoff)`.
    pub base_backoff: Duration,
    /// Read/write/connect timeout per attempt.
    pub timeout: Duration,
    /// Optional wall-clock deadline per *logical call* (`hps client
    /// --timeout MS`). Where `timeout` bounds one attempt, this bounds the
    /// whole retry loop: a hung or unreachable server fails fast with a
    /// terminal `deadline` fault instead of exhausting the backoff budget.
    pub call_deadline: Option<Duration>,
    /// How many committed sequenced frames the client retains for the
    /// session-resume path: if a recovered server comes back missing a
    /// tail of committed units (lost journal frames), the handshake
    /// re-drives up to this many frames byte-identically.
    pub resume_window: usize,
    /// Seed for the deterministic jitter stream (and session-id salt).
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// Defaults: 6 attempts, 10 ms base backoff, 5 s timeout, no per-call
    /// deadline, 64-frame resume window.
    pub fn new() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(10),
            timeout: Duration::from_secs(5),
            call_deadline: None,
            resume_window: 64,
            jitter_seed: 0x5eed_cafe,
        }
    }

    /// Overrides the attempt budget (builder style).
    pub fn with_max_attempts(mut self, n: u32) -> RetryPolicy {
        self.max_attempts = n.max(1);
        self
    }

    /// Overrides the base backoff (builder style).
    pub fn with_base_backoff(mut self, d: Duration) -> RetryPolicy {
        self.base_backoff = d;
        self
    }

    /// Overrides the per-attempt timeout (builder style).
    pub fn with_timeout(mut self, d: Duration) -> RetryPolicy {
        self.timeout = d;
        self
    }

    /// Overrides the jitter seed (builder style).
    pub fn with_jitter_seed(mut self, seed: u64) -> RetryPolicy {
        self.jitter_seed = seed;
        self
    }

    /// Sets the per-logical-call deadline (builder style). `None` (the
    /// default) keeps only the per-attempt timeout.
    pub fn with_call_deadline(mut self, deadline: Option<Duration>) -> RetryPolicy {
        self.call_deadline = deadline;
        self
    }

    /// Overrides the session-resume window (builder style; min 1).
    pub fn with_resume_window(mut self, frames: usize) -> RetryPolicy {
        self.resume_window = frames.max(1);
        self
    }

    /// The socket timeout per attempt: the per-attempt timeout, capped by
    /// the per-call deadline when one is set — a hung server must not eat
    /// the whole deadline in a single blocked read.
    fn socket_timeout(&self) -> Duration {
        match self.call_deadline {
            Some(d) => self.timeout.min(d.max(Duration::from_millis(1))),
            None => self.timeout,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::new()
    }
}

/// Reliable-mode state: where to reconnect, how to retry, and the session
/// sequencing the server uses to deduplicate retransmits.
#[derive(Debug)]
struct Reliable {
    addrs: Vec<SocketAddr>,
    policy: RetryPolicy,
    session: u64,
    next_seq: u64,
    /// The last `policy.resume_window` committed sequenced frames,
    /// byte-identical as sent, keyed by sequence number. A recovered
    /// server that lost a committed tail (dead executor, torn disk
    /// journal) is caught up from here during the handshake — see
    /// [`TcpChannel::resume_session`].
    history: std::collections::VecDeque<(u64, Vec<u8>)>,
    rng: StdRng,
}

/// Client side: a [`Channel`] that ships every call to a remote
/// [`SecureServer`] over TCP.
#[derive(Debug)]
pub struct TcpChannel {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    scratch: Vec<u8>,
    interactions: u64,
    rtt_cost: u64,
    batch_cap: usize,
    reliable: Option<Reliable>,
    stats: TransportStats,
    recorder: RecorderHandle,
}

fn split_stream(
    stream: TcpStream,
) -> Result<(BufReader<TcpStream>, BufWriter<TcpStream>), RuntimeError> {
    stream
        .set_nodelay(true)
        .map_err(|e| RuntimeError::transport("set_nodelay", &e))?;
    let reader = stream
        .try_clone()
        .map_err(|e| RuntimeError::transport("clone", &e))?;
    Ok((BufReader::new(reader), BufWriter::new(stream)))
}

fn connect_stream(addrs: &[SocketAddr], timeout: Duration) -> Result<TcpStream, RuntimeError> {
    let mut last: Option<std::io::Error> = None;
    for addr in addrs {
        match TcpStream::connect_timeout(addr, timeout) {
            Ok(s) => {
                s.set_read_timeout(Some(timeout))
                    .map_err(|e| RuntimeError::transport("set_read_timeout", &e))?;
                s.set_write_timeout(Some(timeout))
                    .map_err(|e| RuntimeError::transport("set_write_timeout", &e))?;
                return Ok(s);
            }
            Err(e) => last = Some(e),
        }
    }
    match last {
        Some(e) => Err(RuntimeError::transport("connect", &e)),
        None => Err(RuntimeError::Transport {
            class: FaultClass::Terminal,
            op: "connect",
            detail: "address resolved to nothing".into(),
        }),
    }
}

impl TcpChannel {
    /// Connects to a secure server in single-shot mode: no session, no
    /// retries — any transport fault is returned to the caller.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpChannel, RuntimeError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| RuntimeError::transport("connect", &e))?;
        let (reader, writer) = split_stream(stream)?;
        Ok(TcpChannel {
            reader,
            writer,
            scratch: Vec::with_capacity(256),
            interactions: 0,
            rtt_cost: 0,
            batch_cap: usize::from(u16::MAX),
            reliable: None,
            stats: TransportStats::default(),
            recorder: RecorderHandle::none(),
        })
    }

    /// Connects in reliable mode: opens a session with the `Hello`
    /// handshake and transparently retries each round trip under `policy`
    /// (timeouts, reconnect with exponential backoff + jitter, sequenced
    /// exactly-once replay).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] if no connection can be
    /// established within the policy's attempt budget, and
    /// [`RuntimeError::Channel`] on a protocol/version mismatch.
    pub fn connect_reliable(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
    ) -> Result<TcpChannel, RuntimeError> {
        // Session ids only need uniqueness across concurrent clients of one
        // server; salt the seeded stream with wall clock and pid.
        let clock = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut rng =
            StdRng::seed_from_u64(policy.jitter_seed ^ clock ^ u64::from(std::process::id()));
        let session = rng.gen_range(1..u64::MAX);
        TcpChannel::connect_reliable_with_session(addr, policy, session)
    }

    /// [`TcpChannel::connect_reliable`] with a caller-chosen session id
    /// (must be non-zero and unique among this server's live clients).
    /// Session ids decide shard placement (`session % shards` on a sharded
    /// [`SessionServer`]), so benchmarks and tests use this to spread — or
    /// deliberately collide — clients across shards deterministically.
    ///
    /// # Errors
    ///
    /// As [`TcpChannel::connect_reliable`].
    pub fn connect_reliable_with_session(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
        session: u64,
    ) -> Result<TcpChannel, RuntimeError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| RuntimeError::transport("resolve", &e))?
            .collect();
        let rng = StdRng::seed_from_u64(policy.jitter_seed);
        let stream = connect_stream(&addrs, policy.socket_timeout())?;
        let (reader, writer) = split_stream(stream)?;
        let mut chan = TcpChannel {
            reader,
            writer,
            scratch: Vec::with_capacity(256),
            interactions: 0,
            rtt_cost: 0,
            batch_cap: usize::from(u16::MAX),
            reliable: Some(Reliable {
                addrs,
                policy,
                session,
                next_seq: 1,
                history: std::collections::VecDeque::new(),
                rng,
            }),
            stats: TransportStats::default(),
            recorder: RecorderHandle::none(),
        };
        chan.handshake()?;
        Ok(chan)
    }

    /// Sets the virtual round-trip cost charged per call (builder style).
    /// Wall-clock latency is real on this channel; the virtual cost only
    /// matters if the caller also reads virtual time.
    pub fn with_rtt_cost(mut self, rtt: u64) -> TcpChannel {
        self.rtt_cost = rtt;
        self
    }

    /// Overrides the per-frame batch chunking cap (builder style). The wire
    /// format caps one batch frame at `u16::MAX` calls; tests inject a
    /// small cap to exercise the chunking boundary cheaply. Values above
    /// `u16::MAX` are clamped.
    pub fn with_batch_cap(mut self, cap: usize) -> TcpChannel {
        self.batch_cap = cap.clamp(1, usize::from(u16::MAX));
        self
    }

    /// Attaches a telemetry recorder (builder style). Recording never
    /// changes frames on the wire, retries or interaction counts.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> TcpChannel {
        self.recorder = recorder;
        self
    }

    /// The session id, when connected in reliable mode.
    pub fn session_id(&self) -> Option<u64> {
        self.reliable.as_ref().map(|r| r.session)
    }

    /// Asks the remote server to stop serving this connection. In reliable
    /// mode the server keeps the session state for a later reconnect.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] on I/O failure.
    pub fn shutdown(mut self) -> Result<(), RuntimeError> {
        Request::Shutdown.encode_into(&mut self.scratch);
        write_frame(&mut self.writer, &self.scratch)
    }

    /// Performs the `Hello`/`HelloAck` handshake on the current connection.
    fn handshake(&mut self) -> Result<(), RuntimeError> {
        let r = self.reliable.as_ref().expect("reliable mode");
        let hello = Request::Hello {
            version: WIRE_VERSION,
            session: r.session,
        };
        let mut buf = Vec::with_capacity(16);
        hello.encode_into(&mut buf);
        write_frame(&mut self.writer, &buf)?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| RuntimeError::Transport {
            class: FaultClass::Retryable,
            op: "handshake",
            detail: "server closed during handshake".into(),
        })?;
        match Response::decode(&payload)? {
            Response::HelloAck {
                version,
                session,
                next_seq,
            } => {
                let r = self.reliable.as_ref().expect("reliable mode");
                if version != WIRE_VERSION || session != r.session {
                    return Err(RuntimeError::Channel(format!(
                        "handshake mismatch: version {version} session {session}"
                    )));
                }
                // The server may be ahead by exactly one: it executed our
                // outstanding seq but the response was lost, so the
                // retransmit will hit the replay cache. Further ahead is a
                // protocol violation.
                if next_seq > r.next_seq + 1 {
                    return Err(RuntimeError::Channel(format!(
                        "server expects seq {next_seq}, client is at {}",
                        r.next_seq
                    )));
                }
                // The server may also come back *behind*: a recovered
                // server whose journal lost a committed tail. Re-drive
                // the missing frames from the resume window.
                if next_seq < r.next_seq {
                    return self.resume_session(next_seq);
                }
                Ok(())
            }
            Response::Error(msg) => Err(RuntimeError::Channel(format!("remote: {msg}"))),
            other => Err(RuntimeError::Channel(format!(
                "unexpected handshake reply: {other:?}"
            ))),
        }
    }

    /// Re-drives committed-but-lost sequenced frames after the server came
    /// back behind the client (an executor died before journaling its
    /// tail, or a torn disk journal frame was dropped on restart). The
    /// retransmits are the byte-identical original frames, so on the wire
    /// this is indistinguishable from the lost-response retransmits the
    /// protocol always had — the adversary's view is unchanged, and no
    /// interaction or transport counter moves. Responses are discarded:
    /// the client already delivered these calls' results.
    fn resume_session(&mut self, server_next: u64) -> Result<(), RuntimeError> {
        let (frames, client_next, window) = {
            let r = self.reliable.as_ref().expect("reliable mode");
            let frames: Vec<Vec<u8>> = r
                .history
                .iter()
                .filter(|(seq, _)| *seq >= server_next)
                .map(|(_, frame)| frame.clone())
                .collect();
            (frames, r.next_seq, r.policy.resume_window)
        };
        let missing = client_next - server_next;
        if frames.len() as u64 != missing {
            return Err(RuntimeError::Transport {
                class: FaultClass::Terminal,
                op: "resume",
                detail: format!(
                    "server lost {missing} committed units but the resume \
                     window holds {} (cap {window})",
                    frames.len()
                ),
            });
        }
        for frame in frames {
            write_frame(&mut self.writer, &frame)?;
            let payload = read_frame(&mut self.reader)?.ok_or_else(|| RuntimeError::Transport {
                class: FaultClass::Retryable,
                op: "resume",
                detail: "server closed during session resume".into(),
            })?;
            // Any decodable response completes the re-drive: the server's
            // sequence advances on success and execution errors alike.
            let _ = Response::decode(&payload)?;
        }
        Ok(())
    }

    /// Re-establishes the connection and re-opens the session.
    fn reconnect(&mut self) -> Result<(), RuntimeError> {
        let (addrs, timeout) = {
            let r = self.reliable.as_ref().expect("reliable mode");
            (r.addrs.clone(), r.policy.socket_timeout())
        };
        let stream = connect_stream(&addrs, timeout)?;
        let (reader, writer) = split_stream(stream)?;
        self.reader = reader;
        self.writer = writer;
        self.handshake()?;
        self.stats.reconnects += 1;
        self.recorder.record(Event::Reconnect);
        Ok(())
    }

    /// One send/receive over the current connection (no retries).
    fn try_round_trip(&mut self) -> Result<Response, RuntimeError> {
        write_frame(&mut self.writer, &self.scratch)?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| RuntimeError::Transport {
            class: FaultClass::Retryable,
            op: "read",
            detail: "server closed connection".into(),
        })?;
        Response::decode(&payload)
    }

    /// Sleeps `base_backoff · 2^attempt` plus deterministic jitter.
    fn backoff(&mut self, attempt: u32) {
        let r = self.reliable.as_mut().expect("reliable mode");
        let base = r.policy.base_backoff;
        let exp = base.saturating_mul(1u32 << attempt.min(10));
        let jitter_us = r.rng.gen_range(0..=base.as_micros().max(1) as u64);
        std::thread::sleep(exp + Duration::from_micros(jitter_us));
    }

    /// Sends the request already encoded in `scratch`; in reliable mode
    /// retries retryable faults with backoff + reconnect, retransmitting
    /// the identical frame so the server's replay cache can deduplicate.
    fn round_trip_encoded(&mut self) -> Result<Response, RuntimeError> {
        let Some(policy) = self.reliable.as_ref().map(|r| r.policy) else {
            return self.try_round_trip();
        };
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            match self.try_round_trip() {
                Ok(resp) => return Ok(resp),
                Err(_e) if policy.call_deadline.is_some_and(|d| started.elapsed() >= d) => {
                    return Err(RuntimeError::Transport {
                        class: FaultClass::Terminal,
                        op: "deadline",
                        detail: format!(
                            "call exceeded its {}ms deadline after {attempt} retries",
                            policy.call_deadline.expect("checked").as_millis()
                        ),
                    });
                }
                Err(e) if e.is_retryable() && attempt + 1 < policy.max_attempts => {
                    self.stats.faults += 1;
                    self.stats.retries += 1;
                    self.recorder.record(Event::Fault { kind: "io" });
                    self.recorder.record(Event::Retry);
                    self.backoff(attempt);
                    attempt += 1;
                    // A failed reconnect burns attempts too; terminal
                    // connect errors abort immediately.
                    if let Err(re) = self.reconnect() {
                        if re.is_retryable() && attempt + 1 < policy.max_attempts {
                            self.stats.faults += 1;
                            self.recorder.record(Event::Fault { kind: "io" });
                            continue;
                        }
                        return Err(re);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, RuntimeError> {
        req.encode_into(&mut self.scratch);
        self.round_trip_encoded()
    }

    /// Wraps a call/batch request in its sequenced form when a session is
    /// open; advances the sequence only after a successful reply.
    fn sequenced(&mut self, req: Request) -> Result<Response, RuntimeError> {
        let req = match (&self.reliable, req) {
            (
                Some(r),
                Request::Call {
                    component,
                    key,
                    label,
                    args,
                },
            ) => Request::SeqCall {
                seq: r.next_seq,
                call: PendingCall {
                    component,
                    key,
                    label,
                    args,
                },
            },
            (Some(r), Request::Batch(calls)) => Request::SeqBatch {
                seq: r.next_seq,
                calls,
            },
            (_, req) => req,
        };
        let resp = self.round_trip(&req)?;
        if let Some(r) = self.reliable.as_mut() {
            // Keep the committed frame so a recovered server that lost its
            // journal tail can be re-driven (resume_session); the window is
            // bounded by `RetryPolicy::resume_window`.
            if matches!(req, Request::SeqCall { .. } | Request::SeqBatch { .. }) {
                r.history.push_back((r.next_seq, self.scratch.clone()));
                while r.history.len() > r.policy.resume_window {
                    r.history.pop_front();
                }
            }
            r.next_seq += 1;
        }
        Ok(resp)
    }
}

impl Channel for TcpChannel {
    fn call(
        &mut self,
        component: ComponentId,
        key: u64,
        label: FragLabel,
        args: &[Value],
    ) -> Result<CallReply, RuntimeError> {
        self.interactions += 1;
        let resp = self.sequenced(Request::Call {
            component,
            key,
            label,
            args: args.to_vec(),
        })?;
        match resp {
            Response::Reply { value, server_cost } => {
                self.recorder.record(Event::Call {
                    args: args.len() as u64,
                    server_cost,
                });
                self.recorder.record(Event::RoundTrip {
                    calls: 1,
                    rtt_cost: self.rtt_cost,
                });
                Ok(CallReply { value, server_cost })
            }
            Response::Error(msg) => Err(RuntimeError::from_remote(&msg)),
            other => Err(RuntimeError::Channel(format!(
                "unexpected reply to call: {other:?}"
            ))),
        }
    }

    fn call_batch(&mut self, calls: &[PendingCall]) -> Result<Vec<CallReply>, RuntimeError> {
        // The wire format caps one batch frame at u16::MAX calls (tests may
        // inject a smaller cap); larger buffers ride in multiple frames
        // (each its own interaction).
        if calls.len() > self.batch_cap {
            let mut out = Vec::with_capacity(calls.len());
            for chunk in calls.chunks(self.batch_cap) {
                out.extend(self.call_batch(chunk)?);
            }
            return Ok(out);
        }
        self.interactions += 1;
        let resp = self.sequenced(Request::Batch(calls.to_vec()))?;
        match resp {
            Response::Batch(replies) if replies.len() == calls.len() => {
                for (call, reply) in calls.iter().zip(&replies) {
                    self.recorder.record(Event::Call {
                        args: call.args.len() as u64,
                        server_cost: reply.server_cost,
                    });
                }
                self.recorder.record(Event::RoundTrip {
                    calls: calls.len() as u64,
                    rtt_cost: self.rtt_cost,
                });
                Ok(replies)
            }
            Response::Batch(replies) => Err(RuntimeError::Channel(format!(
                "batch reply count mismatch: sent {}, got {}",
                calls.len(),
                replies.len()
            ))),
            Response::Error(msg) => Err(RuntimeError::from_remote(&msg)),
            other => Err(RuntimeError::Channel(format!(
                "unexpected reply to batch: {other:?}"
            ))),
        }
    }

    fn release(&mut self, component: ComponentId, key: u64) -> Result<(), RuntimeError> {
        // Fire-and-forget: no reply expected for release, and the server
        // treats it idempotently, so it is never sequenced or retried.
        Request::Release { component, key }.encode_into(&mut self.scratch);
        write_frame(&mut self.writer, &self.scratch)?;
        self.recorder.record(Event::Release);
        Ok(())
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn rtt_cost(&self) -> u64 {
        self.rtt_cost
    }

    fn transport_stats(&self) -> TransportStats {
        self.stats
    }
}

/// Handles one request on a legacy (unsequenced) connection. Returns the
/// number of logical calls served, or `None` to stop serving.
fn serve_legacy_request(
    req: Request,
    server: &mut SecureServer,
    writer: &mut BufWriter<&TcpStream>,
    scratch: &mut Vec<u8>,
) -> Result<Option<u64>, RuntimeError> {
    match req {
        Request::Call {
            component,
            key,
            label,
            args,
        } => {
            let (resp, served) = match server.call(component, key, label, &args) {
                Ok(out) => (
                    Response::Reply {
                        value: out.value,
                        server_cost: out.cost,
                    },
                    1,
                ),
                Err(e) => (Response::Error(e.to_string()), 0),
            };
            resp.encode_into(scratch);
            write_frame(writer, scratch)?;
            Ok(Some(served))
        }
        Request::Batch(calls) => {
            let (resp, served) = match server.call_batch(&calls) {
                Ok(outs) => {
                    let n = outs.len() as u64;
                    (
                        Response::Batch(
                            outs.into_iter()
                                .map(|out| CallReply {
                                    value: out.value,
                                    server_cost: out.cost,
                                })
                                .collect(),
                        ),
                        n,
                    )
                }
                Err(e) => (Response::Error(e.to_string()), 0),
            };
            resp.encode_into(scratch);
            write_frame(writer, scratch)?;
            Ok(Some(served))
        }
        Request::Release { component, key } => {
            server.release(component, key);
            Ok(Some(0))
        }
        Request::Shutdown => Ok(None),
        Request::Hello { .. } | Request::SeqCall { .. } | Request::SeqBatch { .. } => {
            let resp = Response::Error("session frames need a session server".into());
            resp.encode_into(scratch);
            write_frame(writer, scratch)?;
            Err(RuntimeError::Channel(
                "session frame on a sessionless connection".into(),
            ))
        }
    }
}

/// Serves one client connection until it sends `Shutdown` or disconnects.
/// Returns the number of logical calls served on this connection (each
/// entry of a batch counts).
///
/// # Errors
///
/// Returns [`RuntimeError::Transport`] / [`RuntimeError::Channel`] on
/// transport failures; fragment execution errors are reported to the
/// client, not returned here.
pub fn serve_connection(
    stream: &mut TcpStream,
    server: &mut SecureServer,
) -> Result<u64, RuntimeError> {
    stream
        .set_nodelay(true)
        .map_err(|e| RuntimeError::transport("set_nodelay", &e))?;
    let mut reader = BufReader::new(&*stream);
    let mut writer = BufWriter::new(&*stream);
    let mut scratch = Vec::with_capacity(256);
    let mut served = 0u64;
    loop {
        let payload = match read_frame(&mut reader)? {
            Some(p) => p,
            None => return Ok(served),
        };
        let req = Request::decode(&payload)?;
        match serve_legacy_request(req, server, &mut writer, &mut scratch)? {
            Some(n) => served += n,
            None => return Ok(served),
        }
    }
}

/// Binds a listener on `addr` (use port 0 for an ephemeral port), accepts
/// **one** connection and serves it to completion. Returns calls served.
///
/// Intended for examples and tests; production deployments use
/// [`SessionServer`], which accepts in a loop with one server per session.
///
/// # Errors
///
/// Accept failures surface as [`RuntimeError::Transport`] (classified
/// retryable/terminal); transport failures while serving carry the peer
/// address.
pub fn serve_once(listener: TcpListener, server: &mut SecureServer) -> Result<u64, RuntimeError> {
    let (mut stream, peer) = listener
        .accept()
        .map_err(|e| RuntimeError::transport("accept", &e))?;
    serve_connection(&mut stream, server).map_err(|e| e.with_peer(peer))
}

/// Server-side chaos: deterministically kill sockets mid-call to exercise
/// client reconnect + replay. With probability `kill_per_mille`/1000 per
/// served frame, the connection dies — half the time before executing the
/// request (client retransmit finds a fresh sequence), half after
/// executing but before responding (retransmit hits the replay cache).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChaosConfig {
    /// Seed for the per-connection kill schedule.
    pub seed: u64,
    /// Kill probability per frame, in thousandths.
    pub kill_per_mille: u32,
}

/// Snapshot of a [`SessionServer`]'s counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Distinct sessions created.
    pub sessions: u64,
    /// Logical calls executed (batch entries count; replays do not).
    pub calls: u64,
    /// Retransmits answered from the replay cache.
    pub replays: u64,
    /// Cached responses evicted from bounded replay windows.
    pub replay_evictions: u64,
    /// Connections killed by [`ChaosConfig`].
    pub chaos_kills: u64,
    /// Fragments lowered to bytecode by the fragment VM's compile-once
    /// caches (all shards plus legacy connections; 0 with the VM off).
    pub vm_compiles: u64,
    /// Fragment executions served from already-compiled bytecode.
    pub vm_cache_hits: u64,
    /// Pure-fragment calls answered from the memo tables without running
    /// the fragment (all shards plus legacy connections; 0 with memo off).
    pub memo_hits: u64,
    /// Fragment executions that ran in full and were considered for
    /// memoization (memoizable or not).
    pub memo_misses: u64,
    /// Memo entries evicted by the tables' FIFO capacity bounds.
    pub memo_evictions: u64,
    /// Fragment panics caught by per-request `catch_unwind` (injected and
    /// genuine alike); each poisons at most one session, never a shard.
    pub panics_caught: u64,
    /// Dead shard executors respawned by the supervisor.
    pub shard_restarts: u64,
    /// Sessions rebuilt by replaying their committed-call journal.
    pub journal_replays: u64,
}

impl ServerStats {
    /// The counters as a telemetry snapshot under the `hps_server_*`
    /// registry names — what `hps serve --metrics` exposes.
    pub fn to_metrics(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.add(names::SERVER_CONNECTIONS, self.connections);
        m.add(names::SERVER_SESSIONS, self.sessions);
        m.add(names::SERVER_CALLS, self.calls);
        m.add(names::SERVER_REPLAYS, self.replays);
        m.add(names::SERVER_REPLAY_EVICTIONS, self.replay_evictions);
        m.add(names::SERVER_CHAOS_KILLS, self.chaos_kills);
        m.add(names::SERVER_VM_COMPILES, self.vm_compiles);
        m.add(names::SERVER_VM_CACHE_HITS, self.vm_cache_hits);
        m.add(names::SERVER_MEMO_HITS, self.memo_hits);
        m.add(names::SERVER_MEMO_MISSES, self.memo_misses);
        m.add(names::SERVER_MEMO_EVICTIONS, self.memo_evictions);
        m.add(names::SERVER_PANICS_CAUGHT, self.panics_caught);
        m.add(names::SERVER_SHARD_RESTARTS, self.shard_restarts);
        m.add(names::SERVER_JOURNAL_REPLAYS, self.journal_replays);
        m
    }
}

/// Remote control for a running [`SessionServer`]: read stats, stop it.
#[derive(Clone, Debug)]
pub struct SessionServerHandle {
    addr: SocketAddr,
    stats: Arc<StatsInner>,
    stop: Arc<AtomicBool>,
}

impl SessionServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        let shards = self.stats.shard_stats();
        ServerStats {
            connections: self.stats.connections.load(Ordering::Relaxed),
            sessions: self.stats.sessions.load(Ordering::Relaxed),
            calls: self.stats.calls.load(Ordering::Relaxed),
            replays: self.stats.replays.load(Ordering::Relaxed),
            replay_evictions: self.stats.replay_evictions.load(Ordering::Relaxed),
            chaos_kills: self.stats.chaos_kills.load(Ordering::Relaxed),
            vm_compiles: self.stats.legacy_vm_compiles.load(Ordering::Relaxed)
                + shards.iter().map(|s| s.vm_compiles).sum::<u64>(),
            vm_cache_hits: self.stats.legacy_vm_cache_hits.load(Ordering::Relaxed)
                + shards.iter().map(|s| s.vm_cache_hits).sum::<u64>(),
            memo_hits: self.stats.legacy_memo_hits.load(Ordering::Relaxed)
                + shards.iter().map(|s| s.memo_hits).sum::<u64>(),
            memo_misses: self.stats.legacy_memo_misses.load(Ordering::Relaxed)
                + shards.iter().map(|s| s.memo_misses).sum::<u64>(),
            memo_evictions: self.stats.legacy_memo_evictions.load(Ordering::Relaxed)
                + shards.iter().map(|s| s.memo_evictions).sum::<u64>(),
            panics_caught: self.stats.panics_caught.load(Ordering::Relaxed),
            shard_restarts: self.stats.shard_restarts.load(Ordering::Relaxed),
            journal_replays: self.stats.journal_replays.load(Ordering::Relaxed),
        }
    }

    /// Asks the supervisor to kill one shard executor (crash drill): the
    /// executor thread exits at its next message, the supervisor respawns
    /// it, and its sessions are rebuilt from their journals on demand.
    /// Out-of-range shard indices are ignored.
    pub fn kill_shard(&self, shard: usize) {
        self.stats
            .kill_requests
            .lock()
            .expect("kill-request lock")
            .push(shard);
    }

    /// Per-shard call/session/queue-depth counters, one entry per shard.
    pub fn shard_stats(&self) -> Vec<crate::shard::ShardStats> {
        self.stats.shard_stats()
    }

    /// Enqueue-time queue-depth distribution across every shard.
    pub fn queue_depth(&self) -> Histogram {
        self.stats.queue_depth_histogram()
    }

    /// Full telemetry snapshot: the `hps_server_*` counters plus the
    /// `hps_server_shard_queue_depth` histogram. Virtual cost is summed
    /// across the shard executors.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = self.stats().to_metrics();
        let cost: u64 = self.shard_stats().iter().map(|s| s.cost_units).sum();
        m.add(names::SERVER_COST_UNITS, cost);
        m.merge_histogram(names::SERVER_SHARD_QUEUE_DEPTH, &self.queue_depth());
        // Recovery latency is wall-clock (like the ShardStats nanos
        // fields): live-scrape only, never part of deterministic
        // snapshots — see OBSERVABILITY.md.
        m.merge_histogram(
            names::SERVER_RECOVERY_LATENCY,
            &self.stats.recovery_latency_histogram(),
        );
        m
    }

    /// Asks the server to shut down cleanly: the accept loop exits at its
    /// next poll, live connections are served to completion, and the shard
    /// pool drains every in-flight request before its threads exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// Multi-client accept loop: one I/O thread per client, sessions executed
/// on a pool of shard threads (each owning the sessions hashed to it) with
/// sequenced exactly-once replay. Sessions survive disconnects — a client
/// reconnecting with the same session id resumes its hidden state on the
/// same shard.
pub struct SessionServer {
    listener: TcpListener,
    hidden: HiddenProgram,
    chaos: Option<ChaosConfig>,
    shards: usize,
    queue_capacity: usize,
    replay_capacity: usize,
    fragment_vm: bool,
    fragment_memo: bool,
    journal_limit: usize,
    journal_dir: Option<PathBuf>,
    crash: Option<CrashConfig>,
    stats: Arc<StatsInner>,
    stop: Arc<AtomicBool>,
}

impl SessionServer {
    /// Binds a listener (use port 0 for an ephemeral port) serving `hidden`
    /// to every session. Defaults to a single shard — byte-compatible with
    /// the previous one-executor design; use [`SessionServer::with_shards`]
    /// to scale across cores.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] if the bind fails.
    pub fn bind(
        addr: impl ToSocketAddrs,
        hidden: HiddenProgram,
    ) -> Result<SessionServer, RuntimeError> {
        let listener = TcpListener::bind(addr).map_err(|e| RuntimeError::transport("bind", &e))?;
        Ok(SessionServer {
            listener,
            hidden,
            chaos: None,
            shards: 1,
            queue_capacity: crate::shard::DEFAULT_QUEUE_CAPACITY,
            replay_capacity: crate::shard::DEFAULT_REPLAY_CAPACITY,
            fragment_vm: crate::bytecode::vm_enabled_by_default(),
            fragment_memo: crate::memo::memo_enabled_by_default(),
            journal_limit: crate::journal::DEFAULT_JOURNAL_LIMIT,
            journal_dir: None,
            crash: None,
            stats: Arc::new(StatsInner::default()),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Persists every session's committed-call journal under `dir`
    /// (builder style; one checksummed append-only file per session). A
    /// server re-bound with the same directory rebuilds hidden state by
    /// replay, so sessions survive a full process restart.
    pub fn with_journal_dir(mut self, dir: impl Into<PathBuf>) -> SessionServer {
        self.journal_dir = Some(dir.into());
        self
    }

    /// Caps the in-memory journal ring per session (builder style; min 1).
    /// A session whose ring overflowed can no longer be rebuilt after an
    /// executor crash and is poisoned instead of silently diverging.
    pub fn with_journal_limit(mut self, ops: usize) -> SessionServer {
        self.journal_limit = ops.max(1);
        self
    }

    /// Enables executor-side crash injection (builder style): seeded
    /// schedules of shard kills and mid-fragment panics, for drills and
    /// the chaos-recovery CI matrix.
    pub fn with_crash(mut self, crash: CrashConfig) -> SessionServer {
        self.crash = Some(crash);
        self
    }

    /// Enables or disables the fragment bytecode VM (builder style;
    /// defaults to on unless `HPS_FRAGMENT_VM=0`). Either mode serves
    /// byte-identical responses; with the VM on, each shard keeps one
    /// compile-once cache shared across its sessions.
    pub fn with_fragment_vm(mut self, enabled: bool) -> SessionServer {
        self.fragment_vm = enabled;
        self
    }

    /// Enables or disables pure-fragment memoization (builder style;
    /// defaults to on unless `HPS_FRAGMENT_MEMO=0`). Either mode serves
    /// byte-identical responses with identical metering; with memo on,
    /// each shard keeps one content-addressed table shared across its
    /// sessions.
    pub fn with_fragment_memo(mut self, enabled: bool) -> SessionServer {
        self.fragment_memo = enabled;
        self
    }

    /// Enables server-side chaos (builder style).
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> SessionServer {
        self.chaos = Some(chaos);
        self
    }

    /// Sets the shard-executor count (builder style; min 1). Sessions are
    /// routed by `session_id % shards`, so any count yields the same
    /// per-session behaviour — more shards only adds parallelism across
    /// sessions.
    pub fn with_shards(mut self, shards: usize) -> SessionServer {
        self.shards = shards.max(1);
        self
    }

    /// Sets the per-session replay-window capacity (builder style; min 1).
    /// Each session retains at most this many cached response frames;
    /// older entries are evicted (counted in
    /// [`ServerStats::replay_evictions`]).
    pub fn with_replay_capacity(mut self, capacity: usize) -> SessionServer {
        self.replay_capacity = capacity.max(1);
        self
    }

    /// Sets the per-shard request-queue bound (builder style; min 1). A
    /// full queue blocks the enqueueing connection threads — back-pressure
    /// on exactly the sessions of the busy shard.
    pub fn with_queue_capacity(mut self, capacity: usize) -> SessionServer {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] if the socket is gone.
    pub fn local_addr(&self) -> Result<SocketAddr, RuntimeError> {
        self.listener
            .local_addr()
            .map_err(|e| RuntimeError::transport("local_addr", &e))
    }

    /// A handle for stopping the server and reading its stats.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] if the socket is gone.
    pub fn handle(&self) -> Result<SessionServerHandle, RuntimeError> {
        Ok(SessionServerHandle {
            addr: self.local_addr()?,
            stats: Arc::clone(&self.stats),
            stop: Arc::clone(&self.stop),
        })
    }

    /// Runs the accept loop until [`SessionServerHandle::stop`] is called.
    /// Each connection is served on its own thread; per-connection
    /// transport errors are contained to that thread (reported via
    /// `on_event`, may be a no-op).
    ///
    /// On stop the shutdown is graceful and ordered: the accept loop exits
    /// first, then every live connection thread is joined (their in-flight
    /// requests still reach the shards), and only then is the shard pool
    /// drained — so no connection ever observes a dead executor during a
    /// clean shutdown.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Transport`] only for terminal accept
    /// failures; retryable accept errors (e.g. fd exhaustion) are reported
    /// and the loop continues.
    pub fn serve(
        self,
        on_event: impl Fn(SocketAddr, &str) + Send + Sync + 'static,
    ) -> Result<(), RuntimeError> {
        let on_event = Arc::new(on_event);
        let pool = ShardPool::spawn(
            ShardConfig {
                shards: self.shards,
                queue_capacity: self.queue_capacity,
                replay_capacity: self.replay_capacity,
                fragment_vm: self.fragment_vm,
                fragment_memo: self.fragment_memo,
                journal_limit: self.journal_limit,
                journal_dir: self.journal_dir.clone(),
                crash: self.crash,
            },
            &self.hidden,
            &self.stats,
        );
        // Poll the listener so stop() needs no nudge connection: WouldBlock
        // means "check the stop flag, nap briefly, try again".
        self.listener
            .set_nonblocking(true)
            .map_err(|e| RuntimeError::transport("set_nonblocking", &e))?;
        let mut conns: Vec<(TcpStream, std::thread::JoinHandle<()>)> = Vec::new();
        let mut conn_index = 0u64;
        let result = loop {
            if self.stop.load(Ordering::SeqCst) {
                break Ok(());
            }
            let (stream, peer) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    conns.retain(|(_, c)| !c.is_finished());
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                Err(e) => {
                    let err = RuntimeError::transport("accept", &e);
                    if err.is_retryable() {
                        on_event(
                            "0.0.0.0:0".parse().expect("static addr"),
                            &format!("accept retry: {err}"),
                        );
                        continue;
                    }
                    break Err(err);
                }
            };
            // Accepted sockets do not inherit the listener's non-blocking
            // mode portably; force blocking I/O for the connection thread.
            if let Err(e) = stream.set_nonblocking(false) {
                on_event(peer, &format!("set_blocking: {e}"));
                continue;
            }
            conn_index += 1;
            self.stats.connections.fetch_add(1, Ordering::Relaxed);
            let stats = Arc::clone(&self.stats);
            let hidden = self.hidden.clone();
            let fragment_vm = self.fragment_vm;
            let fragment_memo = self.fragment_memo;
            let exec = pool.senders();
            let chaos = self
                .chaos
                .map(|c| (c, StdRng::seed_from_u64(c.seed ^ conn_index)));
            let on_event = Arc::clone(&on_event);
            let watch = match stream.try_clone() {
                Ok(w) => w,
                Err(e) => {
                    on_event(peer, &format!("clone stream: {e}"));
                    continue;
                }
            };
            conns.push((
                watch,
                std::thread::spawn(move || {
                    match serve_session_connection(
                        stream,
                        &exec,
                        hidden,
                        fragment_vm,
                        fragment_memo,
                        chaos,
                        &stats,
                    ) {
                        Ok(served) => on_event(peer, &format!("served {served} calls")),
                        Err(e) => on_event(peer, &e.with_peer(peer).to_string()),
                    }
                }),
            ));
        };
        // Graceful drain, in order. First close the *read* half of every
        // live connection: a thread idle in read_frame sees EOF and exits
        // at a frame boundary, while a thread mid-request still executes
        // it, writes the response over the intact write half, and exits on
        // its next read. Then join those threads (they hold shard
        // senders), and only then drain the pool — so no in-flight request
        // ever finds its executor gone.
        for (watch, _) in &conns {
            let _ = watch.shutdown(std::net::Shutdown::Read);
        }
        for (_, c) in conns {
            let _ = c.join();
        }
        pool.drain();
        result
    }
}

/// Chaos verdict for one frame.
enum ChaosAction {
    None,
    KillBeforeExec,
    KillAfterExec,
}

fn chaos_draw(chaos: &mut Option<(ChaosConfig, StdRng)>) -> ChaosAction {
    match chaos {
        Some((cfg, rng)) if cfg.kill_per_mille > 0 => {
            if rng.gen_range(0u32..1000) < cfg.kill_per_mille {
                if rng.gen_range(0u32..2) == 0 {
                    ChaosAction::KillBeforeExec
                } else {
                    ChaosAction::KillAfterExec
                }
            } else {
                ChaosAction::None
            }
        }
        _ => ChaosAction::None,
    }
}

/// How long a connection thread keeps re-driving a request whose executor
/// died mid-flight before giving up on the supervisor.
const EXEC_RETRY_WAIT: Duration = Duration::from_secs(10);

/// Forwards one sequenced unit to the owning shard and waits for the
/// encoded response frame. If the executor dies mid-flight (the reply
/// sender is dropped without an answer), the unit is re-sent to the
/// supervisor's replacement executor: the respawned shard rebuilds the
/// session from its journal, so the re-drive either executes the unit
/// fresh or answers it from the rebuilt replay cache — exactly-once either
/// way, and invisible to the client.
fn exec_round_trip(
    exec: &ShardSenders,
    session: u64,
    seq: u64,
    calls: Arc<Vec<PendingCall>>,
    batch: bool,
) -> Result<Vec<u8>, RuntimeError> {
    let deadline = Instant::now() + EXEC_RETRY_WAIT;
    loop {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        exec.send(
            session,
            ExecMsg::Seq {
                session,
                seq,
                calls: Arc::clone(&calls),
                batch,
                reply: reply_tx,
            },
        )
        .map_err(|_| RuntimeError::Channel("executor is gone".into()))?;
        match reply_rx.recv() {
            Ok(bytes) => return Ok(bytes),
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return Err(RuntimeError::Channel("executor dropped a request".into())),
        }
    }
}

/// Forwards a `Hello` to the owning shard, re-driving across executor
/// respawns like [`exec_round_trip`]. Returns the session's next expected
/// sequence number.
fn exec_hello(exec: &ShardSenders, session: u64) -> Result<u64, RuntimeError> {
    let deadline = Instant::now() + EXEC_RETRY_WAIT;
    loop {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        exec.send(
            session,
            ExecMsg::Hello {
                session,
                reply: reply_tx,
            },
        )
        .map_err(|_| RuntimeError::Channel("executor is gone".into()))?;
        match reply_rx.recv() {
            Ok(next_seq) => return Ok(next_seq),
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return Err(RuntimeError::Channel("executor dropped a request".into())),
        }
    }
}

/// Serves one connection of a [`SessionServer`]: handshake, then sequenced
/// frames executed (or replayed) by the session's shard executor. Falls
/// back to the legacy unsequenced protocol (fresh private server, no
/// session) when the first frame is not `Hello`.
fn serve_session_connection(
    stream: TcpStream,
    exec: &ShardSenders,
    hidden: HiddenProgram,
    fragment_vm: bool,
    fragment_memo: bool,
    mut chaos: Option<(ChaosConfig, StdRng)>,
    stats: &StatsInner,
) -> Result<u64, RuntimeError> {
    stream
        .set_nodelay(true)
        .map_err(|e| RuntimeError::transport("set_nodelay", &e))?;
    let mut reader = BufReader::new(&stream);
    let mut writer = BufWriter::new(&stream);
    let mut scratch = Vec::with_capacity(256);
    let mut served = 0u64;

    // First frame decides the mode.
    let Some(payload) = read_frame(&mut reader)? else {
        return Ok(0);
    };
    let first = Request::decode(&payload)?;
    let session = match first {
        Request::Hello { version, session } => {
            if version != WIRE_VERSION {
                let resp = Response::Error(format!(
                    "version mismatch: server speaks {WIRE_VERSION}, client sent {version}"
                ));
                resp.encode_into(&mut scratch);
                write_frame(&mut writer, &scratch)?;
                return Err(RuntimeError::Channel(format!(
                    "client version {version} != {WIRE_VERSION}"
                )));
            }
            let next_seq = exec_hello(exec, session)?;
            Response::HelloAck {
                version: WIRE_VERSION,
                session,
                next_seq,
            }
            .encode_into(&mut scratch);
            write_frame(&mut writer, &scratch)?;
            session
        }
        // Legacy client: serve it with a private, sessionless server owned
        // by this thread (hidden state is thread-local, so it cannot go
        // through the shared executor and does not need to).
        other => {
            let mut server = SecureServer::new(hidden)
                .with_fragment_vm(fragment_vm)
                .with_fragment_memo(fragment_memo);
            // The private server dies with the connection; fold its VM and
            // memo counters into the shared stats before each exit.
            let fold_vm = |server: &SecureServer| {
                stats
                    .legacy_vm_compiles
                    .fetch_add(server.vm_compiles(), Ordering::Relaxed);
                stats
                    .legacy_vm_cache_hits
                    .fetch_add(server.vm_cache_hits(), Ordering::Relaxed);
                stats
                    .legacy_memo_hits
                    .fetch_add(server.memo_hits(), Ordering::Relaxed);
                stats
                    .legacy_memo_misses
                    .fetch_add(server.memo_misses(), Ordering::Relaxed);
                stats
                    .legacy_memo_evictions
                    .fetch_add(server.memo_evictions(), Ordering::Relaxed);
            };
            match serve_legacy_request(other, &mut server, &mut writer, &mut scratch)? {
                Some(n) => served = n,
                None => {
                    fold_vm(&server);
                    return Ok(served);
                }
            }
            loop {
                let Some(payload) = read_frame(&mut reader)? else {
                    stats.calls.fetch_add(served, Ordering::Relaxed);
                    fold_vm(&server);
                    return Ok(served);
                };
                let req = Request::decode(&payload)?;
                match serve_legacy_request(req, &mut server, &mut writer, &mut scratch)? {
                    Some(n) => served += n,
                    None => {
                        stats.calls.fetch_add(served, Ordering::Relaxed);
                        fold_vm(&server);
                        return Ok(served);
                    }
                }
            }
        }
    };

    loop {
        let Some(payload) = read_frame(&mut reader)? else {
            return Ok(served);
        };
        let req = Request::decode(&payload)?;
        let action = chaos_draw(&mut chaos);
        if matches!(action, ChaosAction::KillBeforeExec) {
            // Drop the connection before the request reaches the executor:
            // the client's retransmit finds a fresh sequence.
            stats.chaos_kills.fetch_add(1, Ordering::Relaxed);
            return Ok(served);
        }
        let kill_after = matches!(action, ChaosAction::KillAfterExec);
        match req {
            Request::SeqCall { seq, call } => {
                let bytes = exec_round_trip(exec, session, seq, Arc::new(vec![call]), false)?;
                served += 1;
                if kill_after {
                    // Executed and cached, but the response never leaves:
                    // the retransmit must hit the replay cache.
                    stats.chaos_kills.fetch_add(1, Ordering::Relaxed);
                    return Ok(served);
                }
                write_frame(&mut writer, &bytes)?;
            }
            Request::SeqBatch { seq, calls } => {
                let n = calls.len() as u64;
                let bytes = exec_round_trip(exec, session, seq, Arc::new(calls), true)?;
                served += n;
                if kill_after {
                    stats.chaos_kills.fetch_add(1, Ordering::Relaxed);
                    return Ok(served);
                }
                write_frame(&mut writer, &bytes)?;
            }
            Request::Release { component, key } => {
                let _ = exec.send(
                    session,
                    ExecMsg::Release {
                        session,
                        component,
                        key,
                    },
                );
            }
            Request::Shutdown => return Ok(served),
            Request::Hello { .. } | Request::Call { .. } | Request::Batch(_) => {
                let resp = Response::Error("unexpected frame on an open session".into());
                resp.encode_into(&mut scratch);
                write_frame(&mut writer, &scratch)?;
                return Err(RuntimeError::Channel(
                    "unsequenced frame on an open session".into(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hps_ir::{
        BinOp, Block, ComponentKind, Expr, Fragment, HiddenComponent, HiddenProgram, HiddenVar,
        LocalId, Place, Stmt, StmtKind, Ty,
    };
    use std::thread;

    fn accumulator_program() -> HiddenProgram {
        let mut hp = HiddenProgram::new();
        hp.add(HiddenComponent {
            id: ComponentId::new(0),
            kind: ComponentKind::Function {
                func_name: "f".into(),
            },
            vars: vec![HiddenVar {
                name: "acc".into(),
                ty: Ty::Int,
                init: None,
            }],
            fragments: vec![Fragment {
                label: FragLabel::new(0),
                params: vec![("p".into(), Ty::Int)],
                body: Block::of(vec![Stmt::new(StmtKind::Assign {
                    place: Place::Local(LocalId::new(0)),
                    value: Expr::binary(
                        BinOp::Add,
                        Expr::local(LocalId::new(0)),
                        Expr::local(LocalId::new(1)),
                    ),
                })]),
                ret: Some(Expr::local(LocalId::new(0))),
            }],
        });
        hp
    }

    fn quick_policy() -> RetryPolicy {
        RetryPolicy::new()
            .with_base_backoff(Duration::from_millis(1))
            .with_timeout(Duration::from_secs(5))
            .with_max_attempts(8)
            .with_jitter_seed(42)
    }

    #[test]
    fn loopback_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = thread::spawn(move || {
            let mut server = SecureServer::new(accumulator_program());
            serve_once(listener, &mut server).expect("serve")
        });
        let mut chan = TcpChannel::connect(addr).expect("connect");
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        let r1 = chan.call(c, 1, l, &[Value::Int(4)]).unwrap();
        assert_eq!(r1.value, Value::Int(4));
        let r2 = chan.call(c, 1, l, &[Value::Int(6)]).unwrap();
        assert_eq!(r2.value, Value::Int(10));
        assert!(r2.server_cost > 0);
        // Fresh key -> fresh state.
        let r3 = chan.call(c, 9, l, &[Value::Int(1)]).unwrap();
        assert_eq!(r3.value, Value::Int(1));
        // Release, then the same key restarts at zero.
        chan.release(c, 1).unwrap();
        let r4 = chan.call(c, 1, l, &[Value::Int(2)]).unwrap();
        assert_eq!(r4.value, Value::Int(2));
        assert_eq!(chan.interactions(), 4);
        chan.shutdown().unwrap();
        let served = handle.join().expect("server thread");
        assert_eq!(served, 4);
    }

    #[test]
    fn loopback_batch_is_one_interaction() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = thread::spawn(move || {
            let mut server = SecureServer::new(accumulator_program());
            serve_once(listener, &mut server).expect("serve")
        });
        let mut chan = TcpChannel::connect(addr).expect("connect");
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        let calls: Vec<PendingCall> = [2, 3, 5]
            .into_iter()
            .map(|n| PendingCall {
                component: c,
                key: 1,
                label: l,
                args: vec![Value::Int(n)],
            })
            .collect();
        let replies = chan.call_batch(&calls).unwrap();
        // The accumulator sees each logical call in order.
        let values: Vec<Value> = replies.iter().map(|r| r.value).collect();
        assert_eq!(values, [Value::Int(2), Value::Int(5), Value::Int(10)]);
        // ... but the transport made a single round trip.
        assert_eq!(chan.interactions(), 1);
        chan.shutdown().unwrap();
        let served = handle.join().expect("server thread");
        assert_eq!(served, 3, "every logical call is served and counted");
    }

    #[test]
    fn remote_errors_are_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = thread::spawn(move || {
            let mut server = SecureServer::new(accumulator_program());
            serve_once(listener, &mut server).expect("serve")
        });
        let mut chan = TcpChannel::connect(addr).expect("connect");
        let err = chan
            .call(ComponentId::new(7), 0, FragLabel::new(0), &[])
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Channel(msg) if msg.contains("remote:")));
        chan.shutdown().unwrap();
        handle.join().expect("server thread");
    }

    #[test]
    fn batch_chunking_at_the_cap_boundary() {
        // The satellite case: exactly cap and cap+1 buffered calls. A small
        // injected cap keeps it fast; the default cap is the wire maximum.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = thread::spawn(move || {
            let mut server = SecureServer::new(accumulator_program());
            serve_once(listener, &mut server).expect("serve")
        });
        let mut chan = TcpChannel::connect(addr)
            .expect("connect")
            .with_batch_cap(3);
        assert_eq!(
            TcpChannel::connect(addr).expect("connect").batch_cap,
            usize::from(u16::MAX),
            "default cap is the wire-format maximum 65535"
        );
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        let mk = |n: i64| PendingCall {
            component: c,
            key: 1,
            label: l,
            args: vec![Value::Int(n)],
        };
        // Exactly at the cap: one frame.
        let replies = chan.call_batch(&[mk(1), mk(2), mk(3)]).unwrap();
        assert_eq!(replies.len(), 3);
        assert_eq!(chan.interactions(), 1);
        // One past the cap: two frames, replies still in order and the
        // accumulator state carries across the chunk boundary.
        let replies = chan.call_batch(&[mk(1), mk(1), mk(1), mk(1)]).unwrap();
        let values: Vec<Value> = replies.iter().map(|r| r.value).collect();
        assert_eq!(
            values,
            [Value::Int(7), Value::Int(8), Value::Int(9), Value::Int(10)]
        );
        assert_eq!(chan.interactions(), 3, "cap+1 calls cost two interactions");
        chan.shutdown().unwrap();
        handle.join().expect("server thread");
    }

    #[test]
    fn session_server_serves_many_clients() {
        let server = SessionServer::bind("127.0.0.1:0", accumulator_program()).expect("bind");
        let handle = server.handle().expect("handle");
        let addr = handle.addr();
        let serve = thread::spawn(move || server.serve(|_, _| {}));
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        let workers: Vec<_> = (0..4)
            .map(|w| {
                thread::spawn(move || {
                    let mut chan =
                        TcpChannel::connect_reliable(addr, quick_policy().with_jitter_seed(w))
                            .expect("connect");
                    // Each client accumulates privately in its own session.
                    for n in 1..=5i64 {
                        let r = chan.call(c, 1, l, &[Value::Int(n)]).expect("call");
                        assert_eq!(r.value, Value::Int(n * (n + 1) / 2));
                    }
                    chan.shutdown().expect("shutdown");
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        let stats = handle.stats();
        assert_eq!(stats.calls, 20);
        assert_eq!(stats.sessions, 4);
        assert!(stats.connections >= 4);
        handle.stop();
        serve.join().expect("serve thread").expect("serve ok");
    }

    #[test]
    fn sharded_server_matches_single_shard_behaviour() {
        // Same workload as session_server_serves_many_clients, but spread
        // over four shard executors: per-session results are identical and
        // the shard counters account for every call and session.
        let server = SessionServer::bind("127.0.0.1:0", accumulator_program())
            .expect("bind")
            .with_shards(4);
        let handle = server.handle().expect("handle");
        let addr = handle.addr();
        let serve = thread::spawn(move || server.serve(|_, _| {}));
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        let workers: Vec<_> = (0..8)
            .map(|w| {
                thread::spawn(move || {
                    let mut chan =
                        TcpChannel::connect_reliable(addr, quick_policy().with_jitter_seed(w))
                            .expect("connect");
                    for n in 1..=5i64 {
                        let r = chan.call(c, 1, l, &[Value::Int(n)]).expect("call");
                        assert_eq!(r.value, Value::Int(n * (n + 1) / 2));
                    }
                    chan.shutdown().expect("shutdown");
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        let stats = handle.stats();
        assert_eq!(stats.calls, 40);
        assert_eq!(stats.sessions, 8);
        let shards = handle.shard_stats();
        assert_eq!(shards.len(), 4);
        assert_eq!(shards.iter().map(|s| s.calls).sum::<u64>(), 40);
        assert_eq!(shards.iter().map(|s| s.fragments).sum::<u64>(), 40);
        assert!(shards.iter().map(|s| s.cost_units).sum::<u64>() > 0);
        assert_eq!(shards.iter().map(|s| s.sessions).sum::<u64>(), 8);
        // Every enqueue (8 Hellos + 40 sequenced calls) was observed into
        // the queue-depth histogram, and the full snapshot carries it.
        assert_eq!(handle.queue_depth().count(), 48);
        let m = handle.metrics();
        assert_eq!(m.counter(names::SERVER_CALLS), 40);
        assert_eq!(
            m.histogram(names::SERVER_SHARD_QUEUE_DEPTH)
                .expect("histogram in snapshot")
                .count(),
            48
        );
        handle.stop();
        serve.join().expect("serve thread").expect("serve ok");
    }

    #[test]
    fn stop_drains_in_flight_requests() {
        // Regression: a clean stop() must let a request already accepted by
        // a shard finish and deliver its response — no connection may
        // observe "executor is gone" mid-call during shutdown.
        let server = SessionServer::bind("127.0.0.1:0", accumulator_program()).expect("bind");
        let handle = server.handle().expect("handle");
        let addr = handle.addr();
        let serve = thread::spawn(move || server.serve(|_, _| {}));
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let worker = thread::spawn(move || {
            // One big batch frame: tens of milliseconds of execution, so
            // the stop below lands while it is in flight. Built up front so
            // the frame hits the wire immediately after the ready signal.
            let calls: Vec<PendingCall> = (0..50_000)
                .map(|_| PendingCall {
                    component: c,
                    key: 1,
                    label: l,
                    args: vec![Value::Int(1)],
                })
                .collect();
            let mut chan = TcpChannel::connect_reliable(addr, quick_policy()).expect("connect");
            chan.call(c, 1, l, &[Value::Int(1)]).expect("warm-up call");
            ready_tx.send(()).expect("signal");
            let replies = chan
                .call_batch(&calls)
                .expect("in-flight batch survives a clean stop");
            replies.len()
        });
        ready_rx.recv().expect("worker ready");
        thread::sleep(Duration::from_millis(50));
        handle.stop();
        serve.join().expect("serve thread").expect("serve ok");
        assert_eq!(worker.join().expect("worker"), 50_000);
        assert_eq!(handle.stats().calls, 50_001);
    }

    #[test]
    fn bounded_replay_window_evicts_and_counts() {
        let server = SessionServer::bind("127.0.0.1:0", accumulator_program())
            .expect("bind")
            .with_shards(2)
            .with_replay_capacity(2);
        let handle = server.handle().expect("handle");
        let addr = handle.addr();
        let serve = thread::spawn(move || server.serve(|_, _| {}));
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        let mut chan = TcpChannel::connect_reliable(addr, quick_policy()).expect("connect");
        for n in 1..=5i64 {
            chan.call(c, 1, l, &[Value::Int(n)]).expect("call");
        }
        chan.shutdown().expect("shutdown");
        handle.stop();
        serve.join().expect("serve thread").expect("serve ok");
        let stats = handle.stats();
        assert_eq!(stats.calls, 5);
        // Window of 2: storing responses 1..=5 evicts 1, 2 and 3.
        assert_eq!(stats.replay_evictions, 3);
        assert_eq!(handle.metrics().counter(names::SERVER_REPLAY_EVICTIONS), 3);
    }

    #[test]
    fn session_survives_reconnect_with_state() {
        let server = SessionServer::bind("127.0.0.1:0", accumulator_program()).expect("bind");
        let handle = server.handle().expect("handle");
        let addr = handle.addr();
        let serve = thread::spawn(move || server.serve(|_, _| {}));
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        let mut chan = TcpChannel::connect_reliable(addr, quick_policy()).expect("connect");
        assert_eq!(
            chan.call(c, 1, l, &[Value::Int(5)]).unwrap().value,
            Value::Int(5)
        );
        // Simulate a dropped link: kill the socket under the channel.
        chan.reconnect().expect("reconnect");
        assert_eq!(
            chan.call(c, 1, l, &[Value::Int(6)]).unwrap().value,
            Value::Int(11),
            "hidden state survives the reconnect"
        );
        chan.shutdown().unwrap();
        handle.stop();
        serve.join().expect("serve thread").expect("serve ok");
    }

    #[test]
    fn chaos_kills_are_survived_exactly_once() {
        // Aggressive server-side chaos: connections die around every ~4th
        // frame, both before and after execution. The reliable client must
        // still see every accumulator value exactly once.
        let server = SessionServer::bind("127.0.0.1:0", accumulator_program())
            .expect("bind")
            .with_chaos(ChaosConfig {
                seed: 0xc405,
                kill_per_mille: 250,
            });
        let handle = server.handle().expect("handle");
        let addr = handle.addr();
        let serve = thread::spawn(move || server.serve(|_, _| {}));
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        let mut chan = TcpChannel::connect_reliable(addr, quick_policy().with_max_attempts(12))
            .expect("connect");
        for n in 1..=30i64 {
            let r = chan.call(c, 1, l, &[Value::Int(n)]).expect("call");
            assert_eq!(r.value, Value::Int(n * (n + 1) / 2), "call {n}");
        }
        let stats = handle.stats();
        assert_eq!(stats.calls, 30, "every logical call executed exactly once");
        assert!(stats.chaos_kills > 0, "chaos must actually fire");
        assert!(chan.transport_stats().reconnects > 0);
        assert_eq!(chan.interactions(), 30);
        chan.shutdown().unwrap();
        handle.stop();
        serve.join().expect("serve thread").expect("serve ok");
    }

    #[test]
    fn sequence_gap_is_terminal() {
        let server = SessionServer::bind("127.0.0.1:0", accumulator_program()).expect("bind");
        let handle = server.handle().expect("handle");
        let addr = handle.addr();
        let serve = thread::spawn(move || server.serve(|_, _| {}));
        let mut chan = TcpChannel::connect_reliable(addr, quick_policy()).expect("connect");
        // Corrupt the client's sequence counter to skip ahead.
        chan.reliable.as_mut().expect("reliable").next_seq = 40;
        let err = chan
            .call(ComponentId::new(0), 1, FragLabel::new(0), &[Value::Int(1)])
            .expect_err("gap must be rejected");
        assert!(
            matches!(&err, RuntimeError::SequenceGap { got: 40, .. }),
            "got {err:?}"
        );
        assert!(!err.is_retryable());
        handle.stop();
        serve.join().expect("serve thread").expect("serve ok");
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let server = SessionServer::bind("127.0.0.1:0", accumulator_program()).expect("bind");
        let handle = server.handle().expect("handle");
        let addr = handle.addr();
        let serve = thread::spawn(move || server.serve(|_, _| {}));
        // Hand-roll a bad Hello.
        let stream = TcpStream::connect(addr).expect("connect");
        let (mut reader, mut writer) = split_stream(stream).expect("split");
        let mut buf = Vec::new();
        Request::Hello {
            version: WIRE_VERSION + 1,
            session: 1,
        }
        .encode_into(&mut buf);
        write_frame(&mut writer, &buf).expect("write");
        let payload = read_frame(&mut reader).expect("read").expect("frame");
        let resp = Response::decode(&payload).expect("decode");
        assert!(
            matches!(&resp, Response::Error(msg) if msg.contains("version mismatch")),
            "got {resp:?}"
        );
        handle.stop();
        serve.join().expect("serve thread").expect("serve ok");
    }

    #[test]
    fn legacy_clients_still_work_against_session_server() {
        let server = SessionServer::bind("127.0.0.1:0", accumulator_program()).expect("bind");
        let handle = server.handle().expect("handle");
        let addr = handle.addr();
        let serve = thread::spawn(move || server.serve(|_, _| {}));
        let mut chan = TcpChannel::connect(addr).expect("connect");
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        assert_eq!(
            chan.call(c, 1, l, &[Value::Int(3)]).unwrap().value,
            Value::Int(3)
        );
        assert_eq!(
            chan.call(c, 1, l, &[Value::Int(4)]).unwrap().value,
            Value::Int(7)
        );
        chan.shutdown().unwrap();
        // Give the connection thread a moment to record its calls.
        for _ in 0..100 {
            if handle.stats().calls == 2 {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(handle.stats().calls, 2);
        assert_eq!(handle.stats().sessions, 0, "legacy mode opens no session");
        handle.stop();
        serve.join().expect("serve thread").expect("serve ok");
    }

    #[test]
    fn retries_are_not_logical_interactions() {
        // Chaos forces retransmits; the interaction count and the trace
        // (per-logical-call) must match a fault-free run.
        let server = SessionServer::bind("127.0.0.1:0", accumulator_program())
            .expect("bind")
            .with_chaos(ChaosConfig {
                seed: 7,
                kill_per_mille: 300,
            });
        let handle = server.handle().expect("handle");
        let addr = handle.addr();
        let serve = thread::spawn(move || server.serve(|_, _| {}));
        let mut chan = TcpChannel::connect_reliable(addr, quick_policy().with_max_attempts(12))
            .expect("connect");
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        let mut trace = crate::trace::TraceChannel::new(&mut chan);
        for n in 1..=10i64 {
            crate::channel::Channel::call(&mut trace, c, 1, l, &[Value::Int(n)]).expect("call");
        }
        let events = trace.into_trace().events;
        assert_eq!(events.len(), 10, "one trace event per logical call");
        let stats = chan.transport_stats();
        assert!(
            stats.retries > 0 || handle.stats().chaos_kills == 0,
            "kills force retries"
        );
        assert_eq!(chan.interactions(), 10);
        chan.shutdown().unwrap();
        handle.stop();
        serve.join().expect("serve thread").expect("serve ok");
    }
}
