//! TCP transport: run the hidden component in another process or on
//! another machine, as in the paper's evaluation ("ran them on two separate
//! linux based machines that communicated over the local area network").
//!
//! Frames are the [`crate::wire`] protocol. Each connection keeps a
//! persistent buffered reader/writer pair and reuses one encode buffer, so
//! steady-state calls perform no per-call allocation for framing. Batched
//! calls ([`Channel::call_batch`]) travel as one `Request::Batch` frame and
//! count as a single interaction.

use crate::channel::{CallReply, Channel, PendingCall};
use crate::error::RuntimeError;
use crate::server::SecureServer;
use crate::wire::{read_frame, write_frame, Request, Response};
use hps_ir::{ComponentId, FragLabel, Value};
use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// Client side: a [`Channel`] that ships every call to a remote
/// [`SecureServer`] over TCP.
#[derive(Debug)]
pub struct TcpChannel {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    scratch: Vec<u8>,
    interactions: u64,
    rtt_cost: u64,
}

impl TcpChannel {
    /// Connects to a secure server.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Channel`] if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpChannel, RuntimeError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| RuntimeError::Channel(format!("connect failed: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| RuntimeError::Channel(format!("set_nodelay failed: {e}")))?;
        let reader = stream
            .try_clone()
            .map_err(|e| RuntimeError::Channel(format!("clone failed: {e}")))?;
        Ok(TcpChannel {
            reader: BufReader::new(reader),
            writer: BufWriter::new(stream),
            scratch: Vec::with_capacity(256),
            interactions: 0,
            rtt_cost: 0,
        })
    }

    /// Sets the virtual round-trip cost charged per call (builder style).
    /// Wall-clock latency is real on this channel; the virtual cost only
    /// matters if the caller also reads virtual time.
    pub fn with_rtt_cost(mut self, rtt: u64) -> TcpChannel {
        self.rtt_cost = rtt;
        self
    }

    /// Asks the remote server to stop serving this connection.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Channel`] on I/O failure.
    pub fn shutdown(mut self) -> Result<(), RuntimeError> {
        Request::Shutdown.encode_into(&mut self.scratch);
        write_frame(&mut self.writer, &self.scratch)
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, RuntimeError> {
        req.encode_into(&mut self.scratch);
        write_frame(&mut self.writer, &self.scratch)?;
        let payload = read_frame(&mut self.reader)?
            .ok_or_else(|| RuntimeError::Channel("server closed connection".into()))?;
        Response::decode(&payload)
    }
}

impl Channel for TcpChannel {
    fn call(
        &mut self,
        component: ComponentId,
        key: u64,
        label: FragLabel,
        args: &[Value],
    ) -> Result<CallReply, RuntimeError> {
        self.interactions += 1;
        let resp = self.round_trip(&Request::Call {
            component,
            key,
            label,
            args: args.to_vec(),
        })?;
        match resp {
            Response::Reply { value, server_cost } => Ok(CallReply { value, server_cost }),
            Response::Error(msg) => Err(RuntimeError::Channel(format!("remote: {msg}"))),
            Response::Batch(_) => Err(RuntimeError::Channel("unexpected batch reply".into())),
        }
    }

    fn call_batch(&mut self, calls: &[PendingCall]) -> Result<Vec<CallReply>, RuntimeError> {
        // The wire format caps one batch frame at u16::MAX calls; larger
        // buffers ride in multiple frames (each its own interaction).
        if calls.len() > usize::from(u16::MAX) {
            let mut out = Vec::with_capacity(calls.len());
            for chunk in calls.chunks(usize::from(u16::MAX)) {
                out.extend(self.call_batch(chunk)?);
            }
            return Ok(out);
        }
        self.interactions += 1;
        let resp = self.round_trip(&Request::Batch(calls.to_vec()))?;
        match resp {
            Response::Batch(replies) if replies.len() == calls.len() => Ok(replies),
            Response::Batch(replies) => Err(RuntimeError::Channel(format!(
                "batch reply count mismatch: sent {}, got {}",
                calls.len(),
                replies.len()
            ))),
            Response::Error(msg) => Err(RuntimeError::Channel(format!("remote: {msg}"))),
            Response::Reply { .. } => Err(RuntimeError::Channel(
                "unexpected single reply to batch".into(),
            )),
        }
    }

    fn release(&mut self, component: ComponentId, key: u64) -> Result<(), RuntimeError> {
        // Fire-and-forget: no reply expected for release.
        Request::Release { component, key }.encode_into(&mut self.scratch);
        write_frame(&mut self.writer, &self.scratch)
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn rtt_cost(&self) -> u64 {
        self.rtt_cost
    }
}

/// Serves one client connection until it sends `Shutdown` or disconnects.
/// Returns the number of logical calls served on this connection (each
/// entry of a batch counts).
///
/// # Errors
///
/// Returns [`RuntimeError::Channel`] on transport failures; fragment
/// execution errors are reported to the client, not returned here.
pub fn serve_connection(
    stream: &mut TcpStream,
    server: &mut SecureServer,
) -> Result<u64, RuntimeError> {
    stream
        .set_nodelay(true)
        .map_err(|e| RuntimeError::Channel(format!("set_nodelay failed: {e}")))?;
    let mut reader = BufReader::new(&*stream);
    let mut writer = BufWriter::new(&*stream);
    let mut scratch = Vec::with_capacity(256);
    let mut served = 0u64;
    loop {
        let payload = match read_frame(&mut reader)? {
            Some(p) => p,
            None => return Ok(served),
        };
        match Request::decode(&payload)? {
            Request::Call {
                component,
                key,
                label,
                args,
            } => {
                let resp = match server.call(component, key, label, &args) {
                    Ok(out) => {
                        served += 1;
                        Response::Reply {
                            value: out.value,
                            server_cost: out.cost,
                        }
                    }
                    Err(e) => Response::Error(e.to_string()),
                };
                resp.encode_into(&mut scratch);
                write_frame(&mut writer, &scratch)?;
            }
            Request::Batch(calls) => {
                let resp = match server.call_batch(&calls) {
                    Ok(outs) => {
                        served += outs.len() as u64;
                        Response::Batch(
                            outs.into_iter()
                                .map(|out| CallReply {
                                    value: out.value,
                                    server_cost: out.cost,
                                })
                                .collect(),
                        )
                    }
                    Err(e) => Response::Error(e.to_string()),
                };
                resp.encode_into(&mut scratch);
                write_frame(&mut writer, &scratch)?;
            }
            Request::Release { component, key } => server.release(component, key),
            Request::Shutdown => return Ok(served),
        }
    }
}

/// Binds a listener on `addr` (use port 0 for an ephemeral port), accepts
/// **one** connection and serves it to completion. Returns calls served.
///
/// Intended for examples and tests; production deployments would accept in
/// a loop with one server per authenticated client.
///
/// # Errors
///
/// Returns [`RuntimeError::Channel`] on bind/accept/transport failures.
pub fn serve_once(listener: TcpListener, server: &mut SecureServer) -> Result<u64, RuntimeError> {
    let (mut stream, _addr) = listener
        .accept()
        .map_err(|e| RuntimeError::Channel(format!("accept failed: {e}")))?;
    serve_connection(&mut stream, server)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hps_ir::{
        BinOp, Block, ComponentKind, Expr, Fragment, HiddenComponent, HiddenProgram, HiddenVar,
        LocalId, Place, Stmt, StmtKind, Ty,
    };
    use std::thread;

    fn accumulator_program() -> HiddenProgram {
        let mut hp = HiddenProgram::new();
        hp.add(HiddenComponent {
            id: ComponentId::new(0),
            kind: ComponentKind::Function {
                func_name: "f".into(),
            },
            vars: vec![HiddenVar {
                name: "acc".into(),
                ty: Ty::Int,
                init: None,
            }],
            fragments: vec![Fragment {
                label: FragLabel::new(0),
                params: vec![("p".into(), Ty::Int)],
                body: Block::of(vec![Stmt::new(StmtKind::Assign {
                    place: Place::Local(LocalId::new(0)),
                    value: Expr::binary(
                        BinOp::Add,
                        Expr::local(LocalId::new(0)),
                        Expr::local(LocalId::new(1)),
                    ),
                })]),
                ret: Some(Expr::local(LocalId::new(0))),
            }],
        });
        hp
    }

    #[test]
    fn loopback_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = thread::spawn(move || {
            let mut server = SecureServer::new(accumulator_program());
            serve_once(listener, &mut server).expect("serve")
        });
        let mut chan = TcpChannel::connect(addr).expect("connect");
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        let r1 = chan.call(c, 1, l, &[Value::Int(4)]).unwrap();
        assert_eq!(r1.value, Value::Int(4));
        let r2 = chan.call(c, 1, l, &[Value::Int(6)]).unwrap();
        assert_eq!(r2.value, Value::Int(10));
        assert!(r2.server_cost > 0);
        // Fresh key -> fresh state.
        let r3 = chan.call(c, 9, l, &[Value::Int(1)]).unwrap();
        assert_eq!(r3.value, Value::Int(1));
        // Release, then the same key restarts at zero.
        chan.release(c, 1).unwrap();
        let r4 = chan.call(c, 1, l, &[Value::Int(2)]).unwrap();
        assert_eq!(r4.value, Value::Int(2));
        assert_eq!(chan.interactions(), 4);
        chan.shutdown().unwrap();
        let served = handle.join().expect("server thread");
        assert_eq!(served, 4);
    }

    #[test]
    fn loopback_batch_is_one_interaction() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = thread::spawn(move || {
            let mut server = SecureServer::new(accumulator_program());
            serve_once(listener, &mut server).expect("serve")
        });
        let mut chan = TcpChannel::connect(addr).expect("connect");
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        let calls: Vec<PendingCall> = [2, 3, 5]
            .into_iter()
            .map(|n| PendingCall {
                component: c,
                key: 1,
                label: l,
                args: vec![Value::Int(n)],
            })
            .collect();
        let replies = chan.call_batch(&calls).unwrap();
        // The accumulator sees each logical call in order.
        let values: Vec<Value> = replies.iter().map(|r| r.value).collect();
        assert_eq!(values, [Value::Int(2), Value::Int(5), Value::Int(10)]);
        // ... but the transport made a single round trip.
        assert_eq!(chan.interactions(), 1);
        chan.shutdown().unwrap();
        let served = handle.join().expect("server thread");
        assert_eq!(served, 3, "every logical call is served and counted");
    }

    #[test]
    fn remote_errors_are_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = thread::spawn(move || {
            let mut server = SecureServer::new(accumulator_program());
            serve_once(listener, &mut server).expect("serve")
        });
        let mut chan = TcpChannel::connect(addr).expect("connect");
        let err = chan
            .call(ComponentId::new(7), 0, FragLabel::new(0), &[])
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Channel(msg) if msg.contains("remote:")));
        chan.shutdown().unwrap();
        handle.join().expect("server thread");
    }
}
