//! # hps-runtime — execution substrate for split programs
//!
//! The paper evaluates its transformation by actually *running* the split
//! programs: "We generated the open and hidden components and ran them on
//! two separate linux based machines that communicated over the local area
//! network." This crate provides the equivalent substrate:
//!
//! * [`interp`] — a tree-walking interpreter for `hps_ir::Program`s with
//!   deterministic virtual-time cost accounting ([`cost::CostModel`]).
//! * [`server`] — the secure-side executor: holds a
//!   [`hps_ir::HiddenProgram`], keeps per-activation / per-instance hidden
//!   state, and runs fragments on request.
//! * [`channel`] — the open↔hidden transport abstraction; in-process with a
//!   configurable round-trip cost for deterministic experiments.
//! * [`tcp`] — a real TCP transport (length-prefixed binary protocol,
//!   [`wire`]) for running the two halves in separate processes/machines.
//! * [`trace`] — the adversary's view: records every value crossing the
//!   channel, feeding the `hps-attack` crate.
//!
//! ## Round-trip batching
//!
//! Hidden calls marked `deferred` by the `hps-core` deferrable-call pass
//! can be buffered and shipped together with the next demanded call as one
//! [`channel::PendingCall`] batch ([`interp::Executor::batching`] /
//! [`interp::ExecConfig::batching`]). On the wire this is one
//! `Request::Batch` frame (tag `0x04`) answered by one `Response::Batch`
//! frame (tag `0x12`) — see [`wire`]. Batching coalesces transport only:
//! the secure side still executes and meters every logical call in order,
//! and [`trace::TraceChannel`] still records each one, so the adversary's
//! view is unchanged.
//!
//! ## Fault tolerance
//!
//! The transport also survives flaky links (DESIGN.md §7b):
//!
//! * [`tcp::TcpChannel::connect_reliable`] opens a *session* and retries
//!   each round trip under a [`tcp::RetryPolicy`] (timeouts, reconnect
//!   with exponential backoff + jitter, sequenced retransmits).
//! * [`tcp::SessionServer`] accepts many clients and deduplicates
//!   retransmits through a [`server::ReplayCache`] — a retried call whose
//!   response was lost is answered from the cache, never re-executed.
//!   Sessions execute on a [`shard`] pool (`session_id % shards`): each
//!   shard thread exclusively owns its sessions' hidden state, so
//!   execution scales across cores without locking hidden values.
//! * [`fault::FaultyChannel`] wraps any channel with a seeded,
//!   deterministic fault schedule (drops, delays, duplicates,
//!   truncations) for in-process chaos testing.
//! * Crash resilience (DESIGN.md §12): per-request `catch_unwind` panic
//!   isolation, a shard supervisor that respawns dead executors, and a
//!   deterministic per-session [`journal`] of committed hidden calls from
//!   which hidden state is rebuilt by replay — optionally persisted with
//!   `--journal-dir` so a restarted `hps serve` resumes sessions
//!   transparently, and exercised by [`fault::CrashFault`] injection.
//!
//! Retries and replays are invisible to the adversary: interaction
//! counts, server-side call counts and [`trace::TraceChannel`] events all
//! match the fault-free run, with reliability counters reported separately
//! in [`channel::TransportStats`].
//!
//! ## Telemetry
//!
//! Every layer (interpreter, channels, server, fault injector, wiretap)
//! carries an optional [`RecorderHandle`] and fires `hps-telemetry`
//! events at its seams — calls, round trips, flushes, retries, faults,
//! replays, fragments. With no recorder attached the hook is a single
//! branch on a `None`; with one, events aggregate into a deterministic
//! [`MetricsSnapshot`] (counters + fixed-bucket histograms over *virtual*
//! quantities only, so snapshots are byte-for-byte reproducible).
//! [`interp::Executor`] is the assembled entry point:
//! `Executor::new(&open, &hidden).batching(true).rtt(10).recorder(r).run(&args)`
//! returns an [`ExecReport`] bundling outcome, transport counters and the
//! telemetry snapshot. Recording never changes results, costs, traces or
//! interaction counts.
//!
//! # Examples
//!
//! Run an ordinary program:
//!
//! ```
//! use hps_runtime::{run_program, RtValue};
//!
//! let program = hps_lang::parse(
//!     "fn main() { var i: int = 0; while (i < 3) { print(i); i = i + 1; } }",
//! )?;
//! let outcome = run_program(&program, &[])?;
//! assert_eq!(outcome.output, ["0", "1", "2"]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod bytecode;
pub mod channel;
pub mod cost;
pub mod error;
pub mod fault;
pub mod fragment;
pub mod interp;
pub mod journal;
pub mod memo;
mod ops;
pub mod server;
pub mod shard;
pub mod tcp;
pub mod trace;
pub mod value;
pub mod wire;

/// Telemetry primitives (recorders, metric names, snapshots) re-exported
/// for callers wiring up [`interp::Executor::recorder`] or the per-channel
/// `with_recorder` builders.
pub use hps_telemetry as telemetry;
pub use hps_telemetry::{MetricsRecorder, MetricsSnapshot, Recorder, RecorderHandle};

pub use bytecode::{compile_fragment, CompiledFragment, VmCache};
pub use channel::{CallReply, Channel, InProcessChannel, PendingCall, TransportStats};
pub use cost::CostModel;
pub use error::{FaultClass, RuntimeError};
pub use fault::{CrashConfig, CrashFault, FaultKind, FaultPlan, FaultyChannel};
pub use interp::{
    run_function, run_program, run_split, run_split_batched, run_split_faulty, run_split_with_rtt,
    ExecConfig, ExecReport, Executor, Interp, Outcome, SplitMeta, SplitOutcome,
};
pub use journal::{JournalOp, SessionJournal};
pub use memo::MemoTable;
pub use server::{ReplayCache, SecureServer, SeqCheck};
pub use shard::ShardStats;
pub use tcp::{ChaosConfig, RetryPolicy, ServerStats, SessionServer, SessionServerHandle};
pub use trace::{Trace, TraceChannel, TraceEvent};
pub use value::RtValue;
