//! Deterministic session journaling — the recovery layer's source of truth.
//!
//! Fragments are deterministic, so a session's hidden state is fully
//! reconstructible by re-executing its *committed* hidden calls in order
//! (DESIGN.md §12). Each session therefore keeps an append-only journal of
//! the sequenced units (and releases) it has committed:
//!
//! * **In-memory ring** ([`SessionJournal`]) — always on, bounded by a
//!   per-session op limit. Owned *outside* the shard executor thread (the
//!   shard pool holds it behind a mutex), so a supervisor can rebuild the
//!   sessions of a crashed shard by replay. A ring that overflowed its
//!   limit is no longer a complete history; recovery then poisons the
//!   session instead of silently rebuilding wrong state.
//! * **Disk persistence** (`hps serve --journal-dir`) — optional
//!   checksummed frames appended synchronously at commit time, from which a
//!   *restarted* server process rebuilds hidden state. The reader stops at
//!   the first corrupt or torn frame, so a crash mid-append (or an injected
//!   journal-truncation fault) loses at most the tail — which the client's
//!   session-resume window re-drives on reconnect.
//!
//! Journal payloads reuse the [`crate::wire`] request encoding (`0x06`
//! seq-call, `0x07` seq-batch, `0x02` release): one battle-tested codec,
//! one format doc. The disk frame adds a CRC32 over the payload:
//!
//! ```text
//! journal-frame := u32 payload_len ++ u32 crc32(payload) ++ payload
//! ```
//!
//! The commit point of the protocol is the journal append: an executor
//! journals a unit *after* executing it and *before* replying, so a
//! rebuilt session's [`crate::server::ReplayCache`] sequence numbers are
//! always at or one behind the client's — exactly the window the resume
//! handshake and retransmit path already cover.

use crate::channel::PendingCall;
use crate::wire::Request;
use hps_ir::ComponentId;
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Default per-session cap on journaled ops. Generous — a session beyond
/// this has outlived crash-recoverability by replay (the ring drops its
/// head and the session is poisoned if recovery is ever needed), which is
/// still strictly better than the pre-recovery behaviour of losing it.
pub const DEFAULT_JOURNAL_LIMIT: usize = 65_536;

/// One committed operation of a session, in commit order.
#[derive(Clone, PartialEq, Debug)]
pub enum JournalOp {
    /// A committed sequenced unit (one call or one atomic batch).
    Seq {
        /// The unit's sequence number (contiguous from 1).
        seq: u64,
        /// The logical calls of the unit (shared with the executor's
        /// in-flight message — journaling never deep-copies arguments).
        calls: Arc<Vec<PendingCall>>,
        /// Whether the unit was a batch frame (`0x07`) or a single call.
        batch: bool,
    },
    /// A committed release of one activation/instance's hidden state.
    /// Journaled so replay frees exactly what the live session freed —
    /// otherwise a rebuilt session would resurrect released state and a
    /// later reuse of the key would observe stale values.
    Release {
        /// Addressed component.
        component: ComponentId,
        /// Activation / instance key.
        key: u64,
    },
}

impl JournalOp {
    /// Encodes the op as a wire request payload (the journal's on-disk
    /// payload format).
    fn encode(&self) -> Vec<u8> {
        match self {
            JournalOp::Seq { seq, calls, batch } => {
                if *batch {
                    Request::SeqBatch {
                        seq: *seq,
                        calls: calls.as_ref().clone(),
                    }
                    .encode()
                } else {
                    Request::SeqCall {
                        seq: *seq,
                        call: calls[0].clone(),
                    }
                    .encode()
                }
            }
            JournalOp::Release { component, key } => Request::Release {
                component: *component,
                key: *key,
            }
            .encode(),
        }
    }

    /// Decodes a journal payload; `None` for any frame that is not a
    /// journalable request (treated as corruption by the reader).
    fn decode(payload: &[u8]) -> Option<JournalOp> {
        match Request::decode(payload).ok()? {
            Request::SeqCall { seq, call } => Some(JournalOp::Seq {
                seq,
                calls: Arc::new(vec![call]),
                batch: false,
            }),
            Request::SeqBatch { seq, calls } => Some(JournalOp::Seq {
                seq,
                calls: Arc::new(calls),
                batch: true,
            }),
            Request::Release { component, key } => Some(JournalOp::Release { component, key }),
            _ => None,
        }
    }
}

/// The in-memory journal of one session: an append-only ring of committed
/// ops plus enough bookkeeping to know whether the ring still holds the
/// *complete* history (a prerequisite for rebuilding by replay).
#[derive(Clone, Debug)]
pub struct SessionJournal {
    ops: VecDeque<JournalOp>,
    dropped: u64,
    limit: usize,
    last_seq: u64,
}

impl SessionJournal {
    /// An empty journal keeping at most `limit` ops (min 1).
    pub fn new(limit: usize) -> SessionJournal {
        SessionJournal {
            ops: VecDeque::new(),
            dropped: 0,
            limit: limit.max(1),
            last_seq: 0,
        }
    }

    /// Appends a committed op, evicting the oldest when the ring is full
    /// (after which [`SessionJournal::is_complete`] is false forever).
    pub fn append(&mut self, op: JournalOp) {
        if let JournalOp::Seq { seq, .. } = &op {
            self.last_seq = *seq;
        }
        self.ops.push_back(op);
        if self.ops.len() > self.limit {
            self.ops.pop_front();
            self.dropped += 1;
        }
    }

    /// True while the ring still holds every committed op since the
    /// session opened — the precondition for rebuilding state by replay.
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }

    /// Ops evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The committed ops, oldest first.
    pub fn ops(&self) -> impl Iterator<Item = &JournalOp> {
        self.ops.iter()
    }

    /// Number of ops currently held.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been journaled yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty() && self.dropped == 0
    }

    /// Highest committed sequence number (0 before the first commit). A
    /// rebuilt session expects `last_seq + 1` next.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }
}

/// CRC-32 (IEEE 802.3, reflected, poly `0xEDB88320`) — the checksum of a
/// disk journal frame. Bitwise implementation: journal frames are small
/// and appends are already dominated by the write syscall.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The on-disk journal file of one session inside a `--journal-dir`.
pub fn journal_path(dir: &Path, session: u64) -> PathBuf {
    dir.join(format!("session-{session:016x}.hpsj"))
}

/// Append handle to one session's disk journal. Frames are flushed per
/// append — the commit point must hit the file before the response hits
/// the wire, or a crash could lose a unit the client saw acknowledged.
#[derive(Debug)]
pub struct DiskJournal {
    file: std::fs::File,
}

impl DiskJournal {
    /// Opens (creating if needed) the session's journal file for append.
    /// Any torn tail left by a crash mid-append is truncated away first —
    /// appends must always extend a valid frame prefix, or everything
    /// written after the tear would be unreadable forever.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation, repair and open failures.
    pub fn open(dir: &Path, session: u64) -> std::io::Result<DiskJournal> {
        std::fs::create_dir_all(dir)?;
        let path = journal_path(dir, session);
        if let Ok(bytes) = std::fs::read(&path) {
            let (valid, _) = scan_frames(&bytes);
            if valid < bytes.len() {
                let file = std::fs::OpenOptions::new().write(true).open(&path)?;
                file.set_len(valid as u64)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(DiskJournal { file })
    }

    /// Appends one checksummed frame for `op` and flushes it.
    ///
    /// # Errors
    ///
    /// Propagates write failures (the caller treats disk journaling as
    /// best-effort beyond the returned error).
    pub fn append(&mut self, op: &JournalOp) -> std::io::Result<()> {
        let payload = op.encode();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.flush()
    }
}

/// Scans raw journal bytes, returning the byte length of the longest
/// prefix of intact frames plus the ops decoded from it. Scanning stops
/// silently at the first torn, truncated or checksum-failing frame.
fn scan_frames(bytes: &[u8]) -> (usize, Vec<JournalOp>) {
    let mut ops = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let sum = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break;
        };
        if crc32(payload) != sum {
            break;
        }
        let Some(op) = JournalOp::decode(payload) else {
            break;
        };
        ops.push(op);
        pos += 8 + len;
    }
    (pos, ops)
}

/// Loads a session's journal from disk, rebuilding the in-memory form.
/// Returns `None` when no journal file exists. Reading stops at the first
/// torn, truncated or checksum-failing frame: everything before it is the
/// recovered history (crash-consistent by the per-append flush),
/// everything after it is lost tail the client's resume window re-drives.
pub fn load_disk_journal(dir: &Path, session: u64, limit: usize) -> Option<SessionJournal> {
    let bytes = std::fs::read(journal_path(dir, session)).ok()?;
    let (_valid, ops) = scan_frames(&bytes);
    let mut journal = SessionJournal::new(limit);
    for op in ops {
        journal.append(op);
    }
    Some(journal)
}

/// Journal-truncation fault: chops the final byte off a session's journal
/// file, simulating a torn last append. The reader then drops the whole
/// last frame, so recovery comes up one committed unit short — exactly the
/// window the client-side session resume must cover.
///
/// # Errors
///
/// Propagates metadata/truncate failures; truncating a missing or empty
/// journal is an error (the fault must actually remove something).
pub fn truncate_tail(dir: &Path, session: u64) -> std::io::Result<()> {
    let path = journal_path(dir, session);
    let len = std::fs::metadata(&path)?.len();
    if len == 0 {
        return Err(std::io::Error::other("journal is empty; nothing to tear"));
    }
    let file = std::fs::OpenOptions::new().write(true).open(&path)?;
    file.set_len(len - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hps_ir::{FragLabel, Value};

    fn call(n: i64) -> PendingCall {
        PendingCall {
            component: ComponentId::new(0),
            key: 1,
            label: FragLabel::new(0),
            args: vec![Value::Int(n)],
        }
    }

    fn seq_op(seq: u64, n: i64) -> JournalOp {
        JournalOp::Seq {
            seq,
            calls: Arc::new(vec![call(n)]),
            batch: false,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn ring_tracks_completeness() {
        let mut j = SessionJournal::new(3);
        assert!(j.is_empty());
        for seq in 1..=3 {
            j.append(seq_op(seq, seq as i64));
        }
        assert!(j.is_complete());
        assert_eq!(j.last_seq(), 3);
        // Overflow drops the head and the history is no longer complete.
        j.append(seq_op(4, 4));
        assert!(!j.is_complete());
        assert_eq!(j.dropped(), 1);
        assert_eq!(j.len(), 3);
        assert_eq!(j.last_seq(), 4);
        let first = j.ops().next().expect("ops");
        assert!(matches!(first, JournalOp::Seq { seq: 2, .. }));
    }

    #[test]
    fn disk_round_trip_and_truncation_tolerance() {
        let dir = std::env::temp_dir().join(format!("hpsj-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = 7u64;
        let ops = [
            seq_op(1, 10),
            JournalOp::Release {
                component: ComponentId::new(0),
                key: 1,
            },
            JournalOp::Seq {
                seq: 2,
                calls: Arc::new(vec![call(1), call(2)]),
                batch: true,
            },
        ];
        {
            let mut disk = DiskJournal::open(&dir, session).expect("open");
            for op in &ops {
                disk.append(op).expect("append");
            }
        }
        let loaded = load_disk_journal(&dir, session, DEFAULT_JOURNAL_LIMIT).expect("journal");
        assert!(loaded.is_complete());
        assert_eq!(loaded.ops().cloned().collect::<Vec<_>>(), ops);
        assert_eq!(loaded.last_seq(), 2);

        // A torn tail costs exactly the last frame, never the file.
        truncate_tail(&dir, session).expect("truncate");
        let torn = load_disk_journal(&dir, session, DEFAULT_JOURNAL_LIMIT).expect("journal");
        assert_eq!(torn.ops().cloned().collect::<Vec<_>>(), ops[..2]);
        assert_eq!(torn.last_seq(), 1);

        // A flipped payload byte is caught by the checksum the same way.
        // Drop the torn tail first so the flip lands in the last *valid*
        // frame (the Release), not in the already-dead frame.
        let path = journal_path(&dir, session);
        let mut bytes = std::fs::read(&path).expect("read");
        let (valid, _) = scan_frames(&bytes);
        bytes.truncate(valid);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).expect("write");
        let corrupt = load_disk_journal(&dir, session, DEFAULT_JOURNAL_LIMIT).expect("journal");
        assert_eq!(corrupt.ops().cloned().collect::<Vec<_>>(), ops[..1]);

        // Missing journals are `None`, distinct from empty ones.
        assert!(load_disk_journal(&dir, 999, DEFAULT_JOURNAL_LIMIT).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
