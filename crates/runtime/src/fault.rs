//! Deterministic fault injection for the open↔hidden transport.
//!
//! [`FaultyChannel`] wraps any [`Channel`] and emulates an unreliable link
//! *plus* the reliability protocol that tames it: every logical call gets a
//! session sequence number, each delivery leg (request and response) may be
//! dropped, delayed, duplicated or truncated according to a seeded
//! deterministic [`FaultPlan`], lost legs are retransmitted, and a
//! [`ReplayCache`] at the receiving end deduplicates — exactly the scheme
//! the TCP transport implements across real sockets (see
//! [`crate::tcp`] and DESIGN.md §7b).
//!
//! The crucial invariant, asserted by the chaos test suite: the wrapped
//! channel sees each logical call **exactly once**, in order, no matter
//! what the fault schedule does. Program output, server-side call counts
//! and [`crate::trace::TraceChannel`] event sequences are therefore
//! byte-identical to a fault-free run; only
//! [`Channel::transport_stats`] differs.

use crate::channel::{CallReply, Channel, PendingCall, TransportStats};
use crate::error::{FaultClass, RuntimeError};
use crate::server::{ReplayCache, SeqCheck};
use hps_ir::{ComponentId, FragLabel, Value};
use hps_telemetry::{Event, RecorderHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One kind of injectable transport fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The frame vanishes on the wire.
    Drop,
    /// The frame arrives late (a slow link); delivery still succeeds.
    Delay,
    /// The frame arrives twice; the receiver must deduplicate.
    Duplicate,
    /// The frame arrives cut short and is rejected by the receiver —
    /// indistinguishable from a drop to the sender.
    Truncate,
}

impl FaultKind {
    /// Every kind, for building full-coverage schedules.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Duplicate,
        FaultKind::Truncate,
    ];

    /// Stable lowercase name (the `FromStr` spelling, also used as the
    /// telemetry fault-kind label).
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Duplicate => "dup",
            FaultKind::Truncate => "truncate",
        }
    }
}

impl std::str::FromStr for FaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultKind, String> {
        match s {
            "drop" => Ok(FaultKind::Drop),
            "delay" => Ok(FaultKind::Delay),
            "dup" | "duplicate" => Ok(FaultKind::Duplicate),
            "truncate" => Ok(FaultKind::Truncate),
            other => Err(format!("unknown fault kind `{other}`")),
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One kind of injectable *crash* fault — unlike [`FaultKind`], these do
/// not perturb individual wire frames but kill whole executors, panic
/// mid-fragment, or damage the on-disk journal. The recovery layer
/// (DESIGN.md §12) must survive all of them without changing the
/// adversary-visible trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrashFault {
    /// A shard executor thread dies mid-stream; the supervisor must
    /// respawn it and rebuild its sessions from their journals.
    ShardKill,
    /// A fragment panics mid-execution; `catch_unwind` must contain the
    /// damage to the offending session.
    Panic,
    /// The tail of an on-disk journal is cut short (torn write at crash
    /// time); replay must stop at the last intact frame and the client's
    /// resume path must re-drive the missing suffix.
    Truncate,
}

impl CrashFault {
    /// Every crash fault, for building full-coverage recovery matrices.
    pub const ALL: [CrashFault; 3] = [
        CrashFault::ShardKill,
        CrashFault::Panic,
        CrashFault::Truncate,
    ];

    /// Stable lowercase name (the `FromStr` spelling, also the CI matrix
    /// cell label).
    pub fn as_str(&self) -> &'static str {
        match self {
            CrashFault::ShardKill => "shard-kill",
            CrashFault::Panic => "panic",
            CrashFault::Truncate => "truncate",
        }
    }
}

impl std::str::FromStr for CrashFault {
    type Err = String;

    fn from_str(s: &str) -> Result<CrashFault, String> {
        match s {
            "shard-kill" | "kill" => Ok(CrashFault::ShardKill),
            "panic" => Ok(CrashFault::Panic),
            "truncate" => Ok(CrashFault::Truncate),
            other => Err(format!("unknown crash fault `{other}`")),
        }
    }
}

impl std::fmt::Display for CrashFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Seeded server-side crash-injection rates, consumed by the session
/// server's shard executors (`SessionServer::with_crash`). Draws are
/// deterministic per (seed, shard, event index), so a failing crash run
/// reproduces exactly like a [`FaultPlan`] schedule does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashConfig {
    /// Seed for the per-shard crash schedule.
    pub seed: u64,
    /// Probability (per mille) that a received message kills the whole
    /// shard executor, exercising supervisor respawn.
    pub shard_kill_per_mille: u32,
    /// Probability (per mille) that a fresh sequenced request panics
    /// mid-fragment, exercising `catch_unwind` + journal rebuild.
    pub panic_per_mille: u32,
}

impl CrashConfig {
    /// A schedule injecting nothing (control cells).
    pub fn quiet(seed: u64) -> CrashConfig {
        CrashConfig {
            seed,
            shard_kill_per_mille: 0,
            panic_per_mille: 0,
        }
    }
}

/// A seeded deterministic fault schedule: on each delivery leg, inject one
/// of the enabled kinds with probability `per_mille`/1000. The same seed
/// always produces the same schedule, so chaos failures reproduce exactly.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    rng: StdRng,
    kinds: Vec<FaultKind>,
    per_mille: u32,
    seed: u64,
    log: Vec<String>,
}

impl FaultPlan {
    /// A plan injecting `kinds` at `per_mille`/1000 per delivery leg,
    /// deterministically derived from `seed`.
    pub fn new(seed: u64, kinds: &[FaultKind], per_mille: u32) -> FaultPlan {
        FaultPlan {
            rng: StdRng::seed_from_u64(seed),
            kinds: kinds.to_vec(),
            per_mille: per_mille.min(1000),
            seed,
            log: Vec::new(),
        }
    }

    /// A plan that never injects anything (control runs).
    pub fn quiet() -> FaultPlan {
        FaultPlan::new(0, &[], 0)
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The chaos log: one line per injected fault, for CI artifacts.
    pub fn log(&self) -> &[String] {
        &self.log
    }

    fn draw(&mut self, seq: u64, leg: &str) -> Option<FaultKind> {
        if self.kinds.is_empty() || self.per_mille == 0 {
            return None;
        }
        if self.rng.gen_range(0u32..1000) >= self.per_mille {
            return None;
        }
        let kind = self.kinds[self.rng.gen_range(0..self.kinds.len())];
        self.log
            .push(format!("seed={} seq={seq} {leg}: {kind}", self.seed));
        Some(kind)
    }
}

/// A cached response: one reply for a sequenced call, a vector for a
/// sequenced batch (retransmitted atomically, like `Request::SeqBatch`).
#[derive(Clone, Debug)]
enum Cached {
    One(CallReply),
    Batch(Vec<CallReply>),
}

/// A [`Channel`] wrapper that subjects every round trip to a seeded fault
/// schedule while running the full retry + exactly-once-replay protocol.
///
/// See the module docs for the invariants it maintains.
#[derive(Debug)]
pub struct FaultyChannel<C: Channel> {
    inner: C,
    plan: FaultPlan,
    max_attempts: u32,
    next_seq: u64,
    replay: ReplayCache<Cached>,
    stats: TransportStats,
    recorder: RecorderHandle,
}

impl<C: Channel> FaultyChannel<C> {
    /// Wraps `inner` under `plan` with a default retry budget generous
    /// enough that seeded schedules at sane rates never exhaust it.
    pub fn new(inner: C, plan: FaultPlan) -> FaultyChannel<C> {
        FaultyChannel {
            inner,
            plan,
            max_attempts: 24,
            next_seq: 1,
            replay: ReplayCache::new(),
            stats: TransportStats::default(),
            recorder: RecorderHandle::none(),
        }
    }

    /// Overrides the retry budget (builder style).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> FaultyChannel<C> {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Attaches a telemetry recorder firing `Retry` / `Fault` / `Replay`
    /// events as the reliability protocol runs (builder style). Recording
    /// never changes the fault schedule, retries or replies.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> FaultyChannel<C> {
        self.recorder = recorder;
        self
    }

    /// The wrapped channel.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Consumes the wrapper, returning the wrapped channel.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// The chaos log accumulated so far (one line per injected fault).
    pub fn chaos_log(&self) -> &[String] {
        self.plan.log()
    }

    /// Runs one logical round trip under the fault schedule. `execute` is
    /// invoked at most once (on the Fresh delivery); retransmits after a
    /// lost response are answered from the replay cache.
    fn reliable_round_trip(
        &mut self,
        execute: impl Fn(&mut C) -> Result<Cached, RuntimeError>,
    ) -> Result<Cached, RuntimeError> {
        let seq = self.next_seq;
        for attempt in 0..self.max_attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                self.recorder.record(Event::Retry);
            }
            // Request leg: the frame may never reach the receiver.
            let mut duplicated = false;
            if let Some(kind) = self.plan.draw(seq, "request") {
                self.stats.faults += 1;
                self.recorder.record(Event::Fault {
                    kind: kind.as_str(),
                });
                match kind {
                    FaultKind::Drop | FaultKind::Truncate => continue,
                    FaultKind::Delay => {}
                    FaultKind::Duplicate => duplicated = true,
                }
            }
            // Delivery through the receiver's dedup endpoint: execute on
            // the first arrival, replay the cached response on retransmits.
            let reply = match self.replay.check(seq) {
                SeqCheck::Fresh => {
                    let r = execute(&mut self.inner)?;
                    self.replay.store(seq, r.clone());
                    r
                }
                SeqCheck::Replay(r) => {
                    self.stats.replays += 1;
                    self.recorder.record(Event::Replay);
                    r.clone()
                }
                SeqCheck::Gap { expected } => {
                    return Err(RuntimeError::SequenceGap { got: seq, expected })
                }
            };
            if duplicated {
                // The second copy arrives and is suppressed by the cache.
                match self.replay.check(seq) {
                    SeqCheck::Replay(_) => {
                        self.stats.replays += 1;
                        self.recorder.record(Event::Replay);
                    }
                    _ => unreachable!("duplicate of a stored seq must replay"),
                }
            }
            // Response leg: the reply may be lost on its way back.
            if let Some(kind) = self.plan.draw(seq, "response") {
                self.stats.faults += 1;
                self.recorder.record(Event::Fault {
                    kind: kind.as_str(),
                });
                match kind {
                    FaultKind::Drop | FaultKind::Truncate => continue,
                    // A late or doubled reply still completes the round
                    // trip; the extra copy is discarded by the sender.
                    FaultKind::Delay | FaultKind::Duplicate => {}
                }
            }
            self.next_seq = seq + 1;
            return Ok(reply);
        }
        Err(RuntimeError::Transport {
            class: FaultClass::Terminal,
            op: "retry",
            detail: format!(
                "gave up on seq {seq} after {} attempts (seed {})",
                self.max_attempts,
                self.plan.seed()
            ),
        })
    }
}

impl<C: Channel> Channel for FaultyChannel<C> {
    fn call(
        &mut self,
        component: ComponentId,
        key: u64,
        label: FragLabel,
        args: &[Value],
    ) -> Result<CallReply, RuntimeError> {
        let args = args.to_vec();
        let cached = self.reliable_round_trip(|inner| {
            inner.call(component, key, label, &args).map(Cached::One)
        })?;
        match cached {
            Cached::One(reply) => Ok(reply),
            Cached::Batch(_) => unreachable!("call seq cached a batch"),
        }
    }

    fn call_batch(&mut self, calls: &[PendingCall]) -> Result<Vec<CallReply>, RuntimeError> {
        let cached =
            self.reliable_round_trip(|inner| inner.call_batch(calls).map(Cached::Batch))?;
        match cached {
            Cached::Batch(replies) => Ok(replies),
            Cached::One(_) => unreachable!("batch seq cached a single reply"),
        }
    }

    fn release(&mut self, component: ComponentId, key: u64) -> Result<(), RuntimeError> {
        // Fire-and-forget and idempotent: a lost release is indistinguishable
        // from a slow one, so it passes straight through.
        self.inner.release(component, key)
    }

    fn interactions(&self) -> u64 {
        // Logical round trips only — retries and replays never reach the
        // wrapped channel, so its count equals the fault-free run's.
        self.inner.interactions()
    }

    fn rtt_cost(&self) -> u64 {
        self.inner.rtt_cost()
    }

    fn transport_stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::InProcessChannel;
    use crate::server::SecureServer;
    use hps_ir::{
        BinOp, Block, ComponentKind, Expr, Fragment, HiddenComponent, HiddenProgram, HiddenVar,
        LocalId, Place, Stmt, StmtKind, Ty,
    };

    fn accumulator_program() -> HiddenProgram {
        let mut hp = HiddenProgram::new();
        hp.add(HiddenComponent {
            id: ComponentId::new(0),
            kind: ComponentKind::Function {
                func_name: "f".into(),
            },
            vars: vec![HiddenVar {
                name: "acc".into(),
                ty: Ty::Int,
                init: None,
            }],
            fragments: vec![Fragment {
                label: FragLabel::new(0),
                params: vec![("p".into(), Ty::Int)],
                body: Block::of(vec![Stmt::new(StmtKind::Assign {
                    place: Place::Local(LocalId::new(0)),
                    value: Expr::binary(
                        BinOp::Add,
                        Expr::local(LocalId::new(0)),
                        Expr::local(LocalId::new(1)),
                    ),
                })]),
                ret: Some(Expr::local(LocalId::new(0))),
            }],
        });
        hp
    }

    fn faulty(seed: u64, kinds: &[FaultKind], per_mille: u32) -> FaultyChannel<InProcessChannel> {
        let inner = InProcessChannel::new(SecureServer::new(accumulator_program()));
        FaultyChannel::new(inner, FaultPlan::new(seed, kinds, per_mille))
    }

    /// Drives a stateful accumulator through a faulty channel; any double
    /// execution or lost call changes the running sums.
    fn drive(chan: &mut FaultyChannel<InProcessChannel>) -> Vec<Value> {
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        (1..=20)
            .map(|n| chan.call(c, 1, l, &[Value::Int(n)]).expect("call").value)
            .collect()
    }

    #[test]
    fn heavy_faults_never_change_results() {
        let expected: Vec<Value> = (1..=20i64).map(|n| Value::Int(n * (n + 1) / 2)).collect();
        for seed in 0..50 {
            let mut chan = faulty(seed, &FaultKind::ALL, 300);
            assert_eq!(drive(&mut chan), expected, "seed {seed}");
            // Exactly 20 logical calls reached the server, regardless of
            // how many retransmits the schedule forced.
            assert_eq!(chan.interactions(), 20, "seed {seed}");
            assert_eq!(chan.inner().server().calls_served(), 20, "seed {seed}");
        }
    }

    #[test]
    fn faults_are_counted_and_deterministic() {
        let mut a = faulty(7, &FaultKind::ALL, 400);
        let mut b = faulty(7, &FaultKind::ALL, 400);
        drive(&mut a);
        drive(&mut b);
        let stats = a.transport_stats();
        assert!(stats.faults > 0, "rate 400\u{2030} must inject something");
        assert_eq!(stats, b.transport_stats(), "same seed, same schedule");
        assert_eq!(a.chaos_log(), b.chaos_log());
        assert!(!a.chaos_log().is_empty());
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let mut chan = faulty(3, &[], 0);
        drive(&mut chan);
        assert_eq!(chan.transport_stats(), TransportStats::default());
        assert!(chan.chaos_log().is_empty());
    }

    #[test]
    fn duplicates_are_suppressed_not_reexecuted() {
        let mut chan = faulty(11, &[FaultKind::Duplicate], 1000);
        drive(&mut chan);
        let stats = chan.transport_stats();
        assert!(stats.replays > 0, "every request was duplicated");
        assert_eq!(stats.retries, 0, "duplicates alone never force retries");
        assert_eq!(chan.inner().server().calls_served(), 20);
    }

    #[test]
    fn batches_retransmit_atomically() {
        let mut chan = faulty(5, &FaultKind::ALL, 300);
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        let calls: Vec<PendingCall> = (1..=6)
            .map(|n| PendingCall {
                component: c,
                key: 1,
                label: l,
                args: vec![Value::Int(n)],
            })
            .collect();
        let replies = chan.call_batch(&calls).expect("batch");
        let values: Vec<Value> = replies.iter().map(|r| r.value).collect();
        let expected: Vec<Value> = (1..=6i64).map(|n| Value::Int(n * (n + 1) / 2)).collect();
        assert_eq!(values, expected);
        assert_eq!(chan.inner().server().calls_served(), 6);
        assert_eq!(chan.interactions(), 1, "one logical round trip");
    }

    #[test]
    fn exhausted_retries_are_terminal() {
        // 100% drop rate: nothing ever gets through.
        let mut chan = faulty(1, &[FaultKind::Drop], 1000).with_max_attempts(3);
        let err = chan
            .call(ComponentId::new(0), 1, FragLabel::new(0), &[Value::Int(1)])
            .expect_err("must give up");
        assert!(matches!(
            err,
            RuntimeError::Transport {
                class: FaultClass::Terminal,
                op: "retry",
                ..
            }
        ));
        assert!(!err.is_retryable());
        assert_eq!(chan.transport_stats().retries, 2);
    }

    #[test]
    fn fault_kind_parses() {
        for kind in FaultKind::ALL {
            assert_eq!(kind.to_string().parse::<FaultKind>().unwrap(), kind);
        }
        assert!("lasers".parse::<FaultKind>().is_err());
    }

    #[test]
    fn crash_fault_parses() {
        for fault in CrashFault::ALL {
            assert_eq!(fault.to_string().parse::<CrashFault>().unwrap(), fault);
        }
        assert_eq!("kill".parse::<CrashFault>().unwrap(), CrashFault::ShardKill);
        assert!("meteor".parse::<CrashFault>().is_err());
    }

    #[test]
    fn gaps_surface_as_the_dedicated_variant() {
        // Force the injector's own replay cache out of sync by driving a
        // second channel sharing nothing; simplest here: a gap manufactured
        // by skipping next_seq forward.
        let mut chan = faulty(9, &[], 0);
        chan.next_seq = 5;
        let err = chan
            .call(ComponentId::new(0), 1, FragLabel::new(0), &[Value::Int(1)])
            .expect_err("gap");
        assert_eq!(
            err,
            RuntimeError::SequenceGap {
                got: 5,
                expected: 1
            }
        );
        assert!(!err.is_retryable());
    }
}
