//! The secure-side server.
//!
//! Holds the [`HiddenProgram`] and the hidden part of the running program's
//! state, keyed by `(component, activation-or-instance id)`. State is
//! created lazily on first touch (so no extra round trip is needed to open
//! an activation) and freed on [`SecureServer::release`].

use crate::bytecode::{run_compiled, vm_enabled_by_default, VmCache};
use crate::cost::CostModel;
use crate::error::RuntimeError;
use crate::fragment::{run_fragment, FragOutcome};
use crate::memo::{memo_enabled_by_default, MemoTable};
use crate::value::RtValue;
use hps_ir::{ComponentId, FragLabel, HiddenProgram, Value};
use hps_telemetry::{Event, RecorderHandle};
use std::collections::HashMap;
use std::sync::Arc;

/// Exactly-once dedup state for one session of sequenced calls.
///
/// The reliability protocol retransmits a call when its response may have
/// been lost; the receiving side must then *replay* the cached response
/// rather than re-execute (re-execution would advance hidden state twice
/// and corrupt stateful fragments). One cached entry suffices because the
/// client sends strictly one sequence number at a time: a retransmit can
/// only ever be of the last sequence the server completed.
///
/// The cache is a **bounded sliding window**: it keeps at most
/// [`ReplayCache::capacity`] completed responses and evicts the oldest on
/// every overflowing [`ReplayCache::store`], so a long-running session's
/// memory is capped no matter how many sequences it completes. Evictions
/// are counted ([`ReplayCache::evictions`]) and the session server surfaces
/// them as the `hps_server_replay_evictions_total` telemetry counter.
///
/// Used by the TCP session server (caching encoded response frames) and by
/// the in-process fault-injection harness (caching decoded replies).
#[derive(Clone, Debug)]
pub struct ReplayCache<T> {
    next_seq: u64,
    window: std::collections::VecDeque<(u64, T)>,
    capacity: usize,
    evictions: u64,
}

/// Outcome of presenting a sequence number to a [`ReplayCache`].
#[derive(PartialEq, Debug)]
pub enum SeqCheck<'a, T> {
    /// The next expected sequence: execute, then [`ReplayCache::store`].
    Fresh,
    /// A retransmit of the last completed sequence: resend this cached
    /// response, do **not** re-execute.
    Replay(&'a T),
    /// Out-of-window sequence — the client skipped ahead or rewound past
    /// the cache. Protocol violation; terminal.
    Gap {
        /// The sequence number the cache expected.
        expected: u64,
    },
}

impl<T> ReplayCache<T> {
    /// A fresh session expecting sequence 1, holding one completed
    /// response (the protocol minimum — a retransmit can only be of the
    /// last completed sequence).
    pub fn new() -> ReplayCache<T> {
        ReplayCache::with_capacity(1)
    }

    /// A fresh session keeping up to `capacity` completed responses
    /// (values below 1 are clamped to 1: dropping the last response would
    /// break exactly-once replay).
    pub fn with_capacity(capacity: usize) -> ReplayCache<T> {
        ReplayCache {
            next_seq: 1,
            window: std::collections::VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            evictions: 0,
        }
    }

    /// The next sequence number this session expects.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The maximum number of completed responses kept.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Completed responses evicted by the capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Classifies an incoming sequence number.
    pub fn check(&self, seq: u64) -> SeqCheck<'_, T> {
        if seq == self.next_seq {
            SeqCheck::Fresh
        } else if let Some((_, cached)) = self.window.iter().find(|(s, _)| *s == seq) {
            SeqCheck::Replay(cached)
        } else {
            SeqCheck::Gap {
                expected: self.next_seq,
            }
        }
    }

    /// Records the response for the just-executed `seq` and advances the
    /// window, evicting the oldest cached response when the capacity bound
    /// overflows. Returns the number of evicted entries (0 or 1). `seq`
    /// must be the value [`ReplayCache::check`] called Fresh.
    pub fn store(&mut self, seq: u64, response: T) -> u64 {
        debug_assert_eq!(seq, self.next_seq, "store must follow a Fresh check");
        self.window.push_back((seq, response));
        self.next_seq = seq + 1;
        if self.window.len() > self.capacity {
            self.window.pop_front();
            self.evictions += 1;
            1
        } else {
            0
        }
    }
}

impl<T> Default for ReplayCache<T> {
    fn default() -> ReplayCache<T> {
        ReplayCache::new()
    }
}

/// The secure machine: hidden code plus hidden state.
#[derive(Debug)]
pub struct SecureServer {
    hidden: HiddenProgram,
    cost_model: CostModel,
    state: HashMap<(ComponentId, u64), Vec<RtValue>>,
    calls_served: u64,
    cost_spent: u64,
    recorder: RecorderHandle,
    /// Compile-once fragment bytecode cache; `None` runs the tree-walk.
    /// Shardable: the cache may be shared with other servers of the same
    /// hidden program via [`SecureServer::with_vm_cache`].
    vm: Option<Arc<VmCache>>,
    /// Content-addressed cache of pure-fragment outcomes; `None` always
    /// executes. Shardable like the VM cache
    /// ([`SecureServer::with_memo_table`]). Hits replay the cached cost and
    /// fire the same events as an execution — see [`crate::memo`].
    memo: Option<Arc<MemoTable>>,
}

impl SecureServer {
    /// Creates a server installing the given hidden program.
    ///
    /// The fragment bytecode VM is enabled by default; set
    /// `HPS_FRAGMENT_VM=0` or call [`SecureServer::with_fragment_vm`]
    /// to fall back to the tree-walk (differential testing). Pure-fragment
    /// memoization is likewise on by default; set `HPS_FRAGMENT_MEMO=0` or
    /// call [`SecureServer::with_fragment_memo`] to always execute.
    pub fn new(hidden: HiddenProgram) -> SecureServer {
        let vm = vm_enabled_by_default().then(|| Arc::new(VmCache::for_program(&hidden)));
        let memo = memo_enabled_by_default().then(|| Arc::new(MemoTable::for_program(&hidden)));
        SecureServer {
            hidden,
            cost_model: CostModel::new(),
            state: HashMap::new(),
            calls_served: 0,
            cost_spent: 0,
            recorder: RecorderHandle::none(),
            vm,
            memo,
        }
    }

    /// Replaces the cost model (builder style). Call before the first
    /// fragment executes: lowered bytecode bakes the model's charges in.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> SecureServer {
        self.cost_model = cost_model;
        self
    }

    /// Enables or disables the fragment bytecode VM (builder style).
    /// Enabling creates a fresh empty cache for this server's program.
    pub fn with_fragment_vm(mut self, enabled: bool) -> SecureServer {
        self.vm = enabled.then(|| Arc::new(VmCache::for_program(&self.hidden)));
        self
    }

    /// Shares an existing compile-once cache (builder style) — the shard
    /// pool hands every session of a shard the same cache so each fragment
    /// lowers at most once per shard. The cache must have been built for
    /// this server's hidden program and cost model.
    pub fn with_vm_cache(mut self, cache: Arc<VmCache>) -> SecureServer {
        self.vm = Some(cache);
        self
    }

    /// Enables or disables pure-fragment memoization (builder style).
    /// Enabling creates a fresh empty memo table for this server's program.
    pub fn with_fragment_memo(mut self, enabled: bool) -> SecureServer {
        self.memo = enabled.then(|| Arc::new(MemoTable::for_program(&self.hidden)));
        self
    }

    /// Shares an existing memo table (builder style) — the shard pool hands
    /// every session of a shard the same table so repeated pure calls hit
    /// across sessions and executor respawns. The table must have been
    /// built for this server's hidden program and cost model.
    pub fn with_memo_table(mut self, table: Arc<MemoTable>) -> SecureServer {
        self.memo = Some(table);
        self
    }

    /// Attaches a telemetry recorder firing one `Fragment` event per
    /// executed fragment (builder style). Recording never changes results
    /// or metering.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> SecureServer {
        self.recorder = recorder;
        self
    }

    /// Executes fragment `label` of `component` against the state of
    /// activation/instance `key`, creating zeroed state on first touch.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownComponent`] / [`RuntimeError::UnknownFragment`]
    /// for bad addresses and propagates fragment execution errors.
    pub fn call(
        &mut self,
        component: ComponentId,
        key: u64,
        label: FragLabel,
        args: &[Value],
    ) -> Result<FragOutcome, RuntimeError> {
        if component.index() >= self.hidden.components.len() {
            return Err(RuntimeError::UnknownComponent(component));
        }
        let comp = &self.hidden.components[component.index()];
        let position = comp
            .fragments
            .iter()
            .position(|f| f.label == label)
            .ok_or(RuntimeError::UnknownFragment { component, label })?;
        let fragment = &comp.fragments[position];
        let n_vars = comp.vars.len();
        let vars = self.state.entry((component, key)).or_insert_with(|| {
            comp.vars
                .iter()
                .map(|v| match v.init {
                    Some(init) => RtValue::from_const(init),
                    None => RtValue::default_of(&v.ty),
                })
                .collect()
        });
        // Memo lookup comes *after* the state entry is created so a hit
        // leaves activation lifecycles (and release semantics) exactly as
        // an execution would. A hit replays the cached cost and fires the
        // same `Fragment` event: adversary-invisible by construction.
        if let Some(memo) = &self.memo {
            if let Some((value, cost)) = memo.lookup(component.index(), position, args) {
                self.calls_served += 1;
                self.cost_spent += cost;
                self.recorder.record(Event::Fragment { cost });
                self.recorder.record(Event::MemoHit);
                return Ok(FragOutcome { value, cost });
            }
        }
        let compiled = self.vm.as_ref().and_then(|cache| {
            cache.get_or_compile(
                component.index(),
                position,
                fragment,
                n_vars,
                &self.cost_model,
            )
        });
        let outcome = match compiled {
            Some((code, fresh)) => {
                self.recorder.record(if fresh {
                    Event::VmCompile
                } else {
                    Event::VmCacheHit
                });
                run_compiled(code, vars, args)?
            }
            None => run_fragment(fragment, vars, args, &self.cost_model)?,
        };
        self.calls_served += 1;
        self.cost_spent += outcome.cost;
        self.recorder.record(Event::Fragment { cost: outcome.cost });
        // Only *successful* outcomes are cached (errors returned above
        // always re-execute), and only lattice-pure fragments are accepted
        // by the table. Misses count every successful execution so
        // `memo_hits + memo_misses == fragments_total` reconciles.
        if let Some(memo) = &self.memo {
            let evicted = memo.insert(
                component.index(),
                position,
                args,
                outcome.value,
                outcome.cost,
            );
            memo.record_miss();
            self.recorder.record(Event::MemoMiss);
            for _ in 0..evicted {
                self.recorder.record(Event::MemoEviction);
            }
        }
        Ok(outcome)
    }

    /// Executes a batch of logical fragment calls in order (the payload of
    /// one coalesced round trip).
    ///
    /// Each entry is metered exactly like an individual [`SecureServer::call`]
    /// — `calls_served` and `cost_spent` advance per logical call, so
    /// transport batching never changes what the secure side observes.
    ///
    /// # Errors
    ///
    /// Propagates the first failing call's error; later entries do not run.
    pub fn call_batch(
        &mut self,
        calls: &[crate::channel::PendingCall],
    ) -> Result<Vec<FragOutcome>, RuntimeError> {
        calls
            .iter()
            .map(|c| self.call(c.component, c.key, c.label, &c.args))
            .collect()
    }

    /// Frees the hidden state of one activation/instance (sent by the open
    /// side when a split function returns). Unknown keys are ignored — the
    /// activation may never have touched the hidden side.
    pub fn release(&mut self, component: ComponentId, key: u64) {
        self.state.remove(&(component, key));
    }

    /// Number of fragment calls served.
    pub fn calls_served(&self) -> u64 {
        self.calls_served
    }

    /// Total virtual cost spent executing fragments.
    pub fn cost_spent(&self) -> u64 {
        self.cost_spent
    }

    /// Number of live activations/instances.
    pub fn live_activations(&self) -> usize {
        self.state.len()
    }

    /// True when fragment calls execute on the bytecode VM.
    pub fn fragment_vm_enabled(&self) -> bool {
        self.vm.is_some()
    }

    /// Fragments lowered to bytecode by this server's cache (shared caches
    /// report the shared totals).
    pub fn vm_compiles(&self) -> u64 {
        self.vm.as_ref().map_or(0, |c| c.compiles())
    }

    /// Fragment executions served from already-compiled bytecode.
    pub fn vm_cache_hits(&self) -> u64 {
        self.vm.as_ref().map_or(0, |c| c.cache_hits())
    }

    /// Wall-clock nanoseconds this server's cache spent lowering fragments.
    pub fn vm_compile_nanos(&self) -> u64 {
        self.vm.as_ref().map_or(0, |c| c.compile_nanos())
    }

    /// True when pure-fragment memoization is enabled.
    pub fn fragment_memo_enabled(&self) -> bool {
        self.memo.is_some()
    }

    /// Fragment calls answered from the memo table (shared tables report
    /// the shared totals).
    pub fn memo_hits(&self) -> u64 {
        self.memo.as_ref().map_or(0, |m| m.hits())
    }

    /// Successful fragment executions that missed the memo table.
    pub fn memo_misses(&self) -> u64 {
        self.memo.as_ref().map_or(0, |m| m.misses())
    }

    /// Memoized results evicted by the table's capacity bound.
    pub fn memo_evictions(&self) -> u64 {
        self.memo.as_ref().map_or(0, |m| m.evictions())
    }

    /// Read-only view of the installed hidden program.
    pub fn hidden(&self) -> &HiddenProgram {
        &self.hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hps_ir::{
        BinOp, Block, ComponentKind, Expr, Fragment, HiddenComponent, HiddenVar, LocalId, Place,
        Stmt, StmtKind, Ty,
    };

    fn counter_program() -> HiddenProgram {
        // One component, hidden var c; L0(p): c = c + p, returns c.
        let mut hp = HiddenProgram::new();
        hp.add(HiddenComponent {
            id: ComponentId::new(0),
            kind: ComponentKind::Function {
                func_name: "f".into(),
            },
            vars: vec![HiddenVar {
                name: "c".into(),
                ty: Ty::Int,
                init: None,
            }],
            fragments: vec![Fragment {
                label: FragLabel::new(0),
                params: vec![("p".into(), Ty::Int)],
                body: Block::of(vec![Stmt::new(StmtKind::Assign {
                    place: Place::Local(LocalId::new(0)),
                    value: Expr::binary(
                        BinOp::Add,
                        Expr::local(LocalId::new(0)),
                        Expr::local(LocalId::new(1)),
                    ),
                })]),
                ret: Some(Expr::local(LocalId::new(0))),
            }],
        });
        hp
    }

    #[test]
    fn state_is_per_key_and_lazy() {
        let mut server = SecureServer::new(counter_program());
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        assert_eq!(
            server.call(c, 1, l, &[Value::Int(5)]).unwrap().value,
            Value::Int(5)
        );
        assert_eq!(
            server.call(c, 1, l, &[Value::Int(5)]).unwrap().value,
            Value::Int(10)
        );
        // A different activation starts fresh.
        assert_eq!(
            server.call(c, 2, l, &[Value::Int(1)]).unwrap().value,
            Value::Int(1)
        );
        assert_eq!(server.live_activations(), 2);
        assert_eq!(server.calls_served(), 3);
        assert!(server.cost_spent() > 0);
    }

    #[test]
    fn release_frees_state() {
        let mut server = SecureServer::new(counter_program());
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        server.call(c, 1, l, &[Value::Int(5)]).unwrap();
        server.release(c, 1);
        assert_eq!(server.live_activations(), 0);
        // Re-entering the same key starts from zeroed state.
        assert_eq!(
            server.call(c, 1, l, &[Value::Int(2)]).unwrap().value,
            Value::Int(2)
        );
        // Releasing unknown keys is a no-op.
        server.release(c, 99);
    }

    #[test]
    fn replay_cache_dedups_and_rejects_gaps() {
        let mut cache: ReplayCache<&'static str> = ReplayCache::new();
        assert_eq!(cache.next_seq(), 1);
        assert_eq!(cache.check(1), SeqCheck::Fresh);
        cache.store(1, "one");
        // Retransmit of the completed seq replays without re-execution.
        assert_eq!(cache.check(1), SeqCheck::Replay(&"one"));
        assert_eq!(cache.check(2), SeqCheck::Fresh);
        cache.store(2, "two");
        // The window moved: seq 1 is now a gap, as is skipping ahead.
        assert_eq!(cache.check(1), SeqCheck::Gap { expected: 3 });
        assert_eq!(cache.check(9), SeqCheck::Gap { expected: 3 });
        assert_eq!(cache.check(2), SeqCheck::Replay(&"two"));
        assert_eq!(cache.capacity(), 1, "new() keeps the protocol minimum");
        assert_eq!(cache.evictions(), 1, "storing seq 2 evicted seq 1");
    }

    #[test]
    fn replay_window_is_capacity_bounded() {
        let mut cache: ReplayCache<u64> = ReplayCache::with_capacity(3);
        for seq in 1..=10u64 {
            assert_eq!(cache.check(seq), SeqCheck::Fresh);
            let evicted = cache.store(seq, seq * 100);
            assert_eq!(evicted, u64::from(seq > 3), "seq {seq}");
        }
        // The last `capacity` responses replay; older ones are gone.
        assert_eq!(cache.check(10), SeqCheck::Replay(&1000));
        assert_eq!(cache.check(8), SeqCheck::Replay(&800));
        assert_eq!(cache.check(7), SeqCheck::Gap { expected: 11 });
        assert_eq!(cache.evictions(), 7);
        // Capacity never drops below the protocol minimum of one.
        assert_eq!(ReplayCache::<u64>::with_capacity(0).capacity(), 1);
    }

    #[test]
    fn vm_and_tree_walk_agree_and_cache_counts() {
        let mk = |vm| SecureServer::new(counter_program()).with_fragment_vm(vm);
        let mut on = mk(true);
        let mut off = mk(false);
        assert!(on.fragment_vm_enabled());
        assert!(!off.fragment_vm_enabled());
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        for i in 0..4 {
            let a = on.call(c, 1, l, &[Value::Int(i)]).unwrap();
            let b = off.call(c, 1, l, &[Value::Int(i)]).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(on.cost_spent(), off.cost_spent());
        assert_eq!(on.vm_compiles(), 1, "one fragment lowers once");
        assert_eq!(on.vm_cache_hits(), 3);
        assert_eq!(off.vm_compiles() + off.vm_cache_hits(), 0);
    }

    /// One component, no hidden vars; L0(p): pure `ret p * p + p`.
    fn pure_program() -> HiddenProgram {
        let mut hp = HiddenProgram::new();
        hp.add(HiddenComponent {
            id: ComponentId::new(0),
            kind: ComponentKind::Function {
                func_name: "f".into(),
            },
            vars: vec![],
            fragments: vec![Fragment {
                label: FragLabel::new(0),
                params: vec![("p".into(), Ty::Int)],
                body: Block::of(vec![]),
                ret: Some(Expr::binary(
                    BinOp::Add,
                    Expr::binary(
                        BinOp::Mul,
                        Expr::local(LocalId::new(0)),
                        Expr::local(LocalId::new(0)),
                    ),
                    Expr::local(LocalId::new(0)),
                )),
            }],
        });
        hp
    }

    #[test]
    fn memo_hits_repeat_pure_calls_with_identical_metering() {
        let mut on = SecureServer::new(pure_program()).with_fragment_memo(true);
        let mut off = SecureServer::new(pure_program()).with_fragment_memo(false);
        assert!(on.fragment_memo_enabled());
        assert!(!off.fragment_memo_enabled());
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        // 2 distinct arguments × 3 repeats each.
        for _ in 0..3 {
            for a in [4, 9] {
                let x = on.call(c, 1, l, &[Value::Int(a)]).unwrap();
                let y = off.call(c, 1, l, &[Value::Int(a)]).unwrap();
                assert_eq!(x, y, "memo hit must replay value AND cost");
            }
        }
        assert_eq!(on.calls_served(), off.calls_served());
        assert_eq!(on.cost_spent(), off.cost_spent());
        assert_eq!(on.live_activations(), off.live_activations());
        assert_eq!((on.memo_hits(), on.memo_misses()), (4, 2));
        assert_eq!(on.memo_hits() + on.memo_misses(), on.calls_served());
        assert_eq!(off.memo_hits() + off.memo_misses(), 0);
    }

    #[test]
    fn stateful_fragments_are_never_memoized() {
        // counter_program reads+writes its hidden var: repeated args must
        // re-execute and keep advancing state.
        let mut server = SecureServer::new(counter_program()).with_fragment_memo(true);
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        assert_eq!(
            server.call(c, 1, l, &[Value::Int(5)]).unwrap().value,
            Value::Int(5)
        );
        assert_eq!(
            server.call(c, 1, l, &[Value::Int(5)]).unwrap().value,
            Value::Int(10)
        );
        assert_eq!(server.memo_hits(), 0);
        assert_eq!(server.memo_misses(), 2, "all executions count as misses");
    }

    #[test]
    fn shared_memo_table_hits_across_servers() {
        let hidden = pure_program();
        let table = Arc::new(crate::memo::MemoTable::for_program(&hidden));
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        let mut a = SecureServer::new(hidden.clone()).with_memo_table(Arc::clone(&table));
        let mut b = SecureServer::new(hidden).with_memo_table(Arc::clone(&table));
        let x = a.call(c, 1, l, &[Value::Int(7)]).unwrap();
        let y = b.call(c, 2, l, &[Value::Int(7)]).unwrap();
        assert_eq!(x, y);
        assert_eq!((table.hits(), table.misses()), (1, 1));
    }

    #[test]
    fn bad_addresses() {
        let mut server = SecureServer::new(counter_program());
        assert!(matches!(
            server.call(ComponentId::new(9), 0, FragLabel::new(0), &[]),
            Err(RuntimeError::UnknownComponent(_))
        ));
        assert!(matches!(
            server.call(ComponentId::new(0), 0, FragLabel::new(9), &[]),
            Err(RuntimeError::UnknownFragment { .. })
        ));
    }
}
