//! The open↔hidden transport abstraction.

use crate::error::RuntimeError;
use crate::server::SecureServer;
use hps_ir::{ComponentId, FragLabel, Value};
use hps_telemetry::{Event, RecorderHandle};

// `TransportStats` moved into `hps-telemetry` so transports, reports and
// serialized snapshots share one definition; re-exported here so existing
// `crate::channel::TransportStats` paths keep working.
pub use hps_telemetry::TransportStats;

/// Reply to a fragment call: the returned scalar plus the virtual cost the
/// secure device reported (the open side waits for the reply, so that cost
/// is on the critical path).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CallReply {
    /// The value returned by the fragment (`Int(0)` for "any").
    pub value: Value,
    /// Virtual cost units spent on the secure device.
    pub server_cost: u64,
}

/// One buffered fragment call awaiting transport, produced by the open
/// interpreter when it defers calls marked by the `hps-core` deferrable-call
/// pass. Arguments are already evaluated to scalars, so shipping a batch
/// later cannot change what the fragment observes.
#[derive(Clone, PartialEq, Debug)]
pub struct PendingCall {
    /// Which hidden component the fragment belongs to.
    pub component: ComponentId,
    /// Activation / instance key routing the call to its hidden state.
    pub key: u64,
    /// Which fragment to run.
    pub label: FragLabel,
    /// Evaluated scalar arguments.
    pub args: Vec<Value>,
}

/// Transport between the open component and the secure device.
///
/// Implementations: [`InProcessChannel`] (deterministic, used by tests and
/// the virtual-time experiments), [`crate::tcp::TcpChannel`] (real sockets),
/// [`crate::trace::TraceChannel`] (adversary's wiretap wrapper).
pub trait Channel {
    /// Runs fragment `label` of `component` for activation/instance `key`.
    ///
    /// # Errors
    ///
    /// Propagates secure-side execution errors and transport failures.
    fn call(
        &mut self,
        component: ComponentId,
        key: u64,
        label: FragLabel,
        args: &[Value],
    ) -> Result<CallReply, RuntimeError>;

    /// Runs a batch of logical fragment calls in order and returns one
    /// reply per call.
    ///
    /// Transports that understand batching serve the whole slice in a
    /// single round trip (one [`Channel::interactions`] tick); the default
    /// implementation degrades to one [`Channel::call`] per entry so
    /// existing channel implementations keep working unchanged.
    ///
    /// # Errors
    ///
    /// Propagates secure-side execution errors and transport failures; a
    /// failing call aborts the rest of the batch.
    fn call_batch(&mut self, calls: &[PendingCall]) -> Result<Vec<CallReply>, RuntimeError> {
        calls
            .iter()
            .map(|c| self.call(c.component, c.key, c.label, &c.args))
            .collect()
    }

    /// Notifies the secure side that activation/instance `key` is finished
    /// and its hidden state may be freed.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    fn release(&mut self, component: ComponentId, key: u64) -> Result<(), RuntimeError>;

    /// Number of round-trip interactions so far (fragment calls; release
    /// notifications are fire-and-forget and not counted, matching the
    /// paper's "Component Interactions").
    fn interactions(&self) -> u64;

    /// Virtual cost units one round trip adds to the open side's critical
    /// path (0 for cost-free test channels).
    fn rtt_cost(&self) -> u64;

    /// Reliability counters (retries, reconnects, replays). Fault-free
    /// transports report all-zero; [`crate::tcp::TcpChannel`] in reliable
    /// mode and [`crate::fault::FaultyChannel`] override this.
    fn transport_stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

/// A channel that delivers calls directly to an in-process
/// [`SecureServer`], charging a configurable virtual round-trip latency.
#[derive(Debug)]
pub struct InProcessChannel {
    server: SecureServer,
    rtt: u64,
    interactions: u64,
    recorder: RecorderHandle,
}

impl InProcessChannel {
    /// Creates a channel with zero round-trip cost.
    pub fn new(server: SecureServer) -> InProcessChannel {
        InProcessChannel {
            server,
            rtt: 0,
            interactions: 0,
            recorder: RecorderHandle::none(),
        }
    }

    /// Sets the virtual round-trip cost (builder style).
    pub fn with_rtt(mut self, rtt: u64) -> InProcessChannel {
        self.rtt = rtt;
        self
    }

    /// Attaches a telemetry recorder (builder style). Recording never
    /// changes replies, costs or interaction counts.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> InProcessChannel {
        self.recorder = recorder;
        self
    }

    /// Access to the wrapped server (e.g. to inspect state in tests).
    pub fn server(&self) -> &SecureServer {
        &self.server
    }

    /// Consumes the channel, returning the server.
    pub fn into_server(self) -> SecureServer {
        self.server
    }
}

impl Channel for InProcessChannel {
    fn call(
        &mut self,
        component: ComponentId,
        key: u64,
        label: FragLabel,
        args: &[Value],
    ) -> Result<CallReply, RuntimeError> {
        self.interactions += 1;
        let out = self.server.call(component, key, label, args)?;
        self.recorder.record(Event::Call {
            args: args.len() as u64,
            server_cost: out.cost,
        });
        self.recorder.record(Event::RoundTrip {
            calls: 1,
            rtt_cost: self.rtt,
        });
        Ok(CallReply {
            value: out.value,
            server_cost: out.cost,
        })
    }

    fn call_batch(&mut self, calls: &[PendingCall]) -> Result<Vec<CallReply>, RuntimeError> {
        // One round trip carries the whole batch; the server still executes
        // (and meters) every logical call.
        self.interactions += 1;
        let outs = self.server.call_batch(calls)?;
        for (call, out) in calls.iter().zip(&outs) {
            self.recorder.record(Event::Call {
                args: call.args.len() as u64,
                server_cost: out.cost,
            });
        }
        self.recorder.record(Event::RoundTrip {
            calls: calls.len() as u64,
            rtt_cost: self.rtt,
        });
        Ok(outs
            .into_iter()
            .map(|out| CallReply {
                value: out.value,
                server_cost: out.cost,
            })
            .collect())
    }

    fn release(&mut self, component: ComponentId, key: u64) -> Result<(), RuntimeError> {
        self.server.release(component, key);
        self.recorder.record(Event::Release);
        Ok(())
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    fn rtt_cost(&self) -> u64 {
        self.rtt
    }
}
