//! Secure-side fragment executor.
//!
//! Runs one [`Fragment`] against a component's persistent hidden variables
//! and the scalar arguments shipped by the open side. Fragments are
//! restricted by construction (scalar-only, no calls, no aggregates, no
//! returns); anything outside that subset raises
//! [`RuntimeError::IllegalFragmentOp`] — it would indicate a splitter bug.
//!
//! Fragment execution is single-threaded by design: a fragment only ever
//! runs on the thread owning its component's hidden variables (one shard
//! executor in [`crate::shard`], or the caller's thread in-process), so
//! per-shard fragment counters need no synchronisation with execution.

use crate::cost::CostModel;
use crate::error::RuntimeError;
use crate::ops;
use crate::value::RtValue;
use hps_ir::{Block, Expr, Fragment, Place, StmtKind};

/// Result of executing a fragment: the returned scalar and the virtual
/// cost the secure device spent.
#[derive(Clone, PartialEq, Debug)]
pub struct FragOutcome {
    /// Value returned to the open side (the "any" placeholder is `Int(0)`).
    pub value: hps_ir::Value,
    /// Virtual cost units consumed on the secure device.
    pub cost: u64,
}

/// Maximum number of statements a single fragment call may execute; guards
/// the secure device against runaway hidden loops.
pub const FRAGMENT_STEP_LIMIT: u64 = 200_000_000;

struct FragFrame<'a> {
    /// vars ++ params, per the fragment numbering convention.
    slots: Vec<RtValue>,
    n_vars: usize,
    cost_model: &'a CostModel,
    cost: u64,
    steps: u64,
    limit: u64,
}

/// Executes a fragment.
///
/// `vars` is the component's persistent hidden state for the addressed
/// activation/instance; it is updated in place.
///
/// # Errors
///
/// Returns [`RuntimeError::IllegalFragmentOp`] for constructs fragments may
/// not contain, [`RuntimeError::DivisionByZero`] from arithmetic, and
/// [`RuntimeError::StepLimitExceeded`] if the fragment runs away.
pub fn run_fragment(
    fragment: &Fragment,
    vars: &mut [RtValue],
    args: &[hps_ir::Value],
    cost_model: &CostModel,
) -> Result<FragOutcome, RuntimeError> {
    run_fragment_with_limit(fragment, vars, args, cost_model, FRAGMENT_STEP_LIMIT)
}

/// [`run_fragment`] with an explicit step limit. Differential tests use
/// small limits to pin the exact statement count at which
/// [`RuntimeError::StepLimitExceeded`] fires in both the tree-walk and the
/// bytecode VM ([`crate::bytecode`]).
///
/// # Errors
///
/// As [`run_fragment`], with `StepLimitExceeded` carrying `limit`.
pub fn run_fragment_with_limit(
    fragment: &Fragment,
    vars: &mut [RtValue],
    args: &[hps_ir::Value],
    cost_model: &CostModel,
    limit: u64,
) -> Result<FragOutcome, RuntimeError> {
    if args.len() != fragment.params.len() {
        return Err(RuntimeError::Channel(format!(
            "fragment {} expects {} args, got {}",
            fragment.label,
            fragment.params.len(),
            args.len()
        )));
    }
    let mut slots: Vec<RtValue> = vars.to_vec();
    slots.extend(args.iter().map(|&v| RtValue::from_const(v)));
    let mut frame = FragFrame {
        slots,
        n_vars: vars.len(),
        cost_model,
        cost: cost_model.marshal_per_arg * args.len() as u64,
        steps: 0,
        limit,
    };
    frame.exec_block(&fragment.body)?;
    let value = match &fragment.ret {
        Some(e) => {
            let v = frame.eval(e)?;
            v.to_const().ok_or(RuntimeError::TypeMismatch {
                expected: "scalar return",
                found: "aggregate",
            })?
        }
        None => hps_ir::Value::Int(0),
    };
    // Write persistent state back.
    vars.clone_from_slice(&frame.slots[..frame.n_vars]);
    Ok(FragOutcome {
        value,
        cost: frame.cost,
    })
}

enum Flow {
    Normal,
    Break,
    Continue,
}

impl FragFrame<'_> {
    fn tick(&mut self) -> Result<(), RuntimeError> {
        self.steps += 1;
        if self.steps > self.limit {
            return Err(RuntimeError::StepLimitExceeded { limit: self.limit });
        }
        Ok(())
    }

    fn exec_block(&mut self, block: &Block) -> Result<Flow, RuntimeError> {
        for stmt in &block.stmts {
            self.tick()?;
            match &stmt.kind {
                StmtKind::Assign { place, value } => {
                    let v = self.eval(value)?;
                    self.cost += self.cost_model.assign;
                    match place {
                        Place::Local(id) => {
                            let idx = id.index();
                            if idx >= self.slots.len() {
                                return Err(RuntimeError::IllegalFragmentOp(
                                    "out-of-range hidden slot",
                                ));
                            }
                            self.slots[idx] = v;
                        }
                        _ => {
                            return Err(RuntimeError::IllegalFragmentOp(
                                "aggregate store in fragment",
                            ))
                        }
                    }
                }
                StmtKind::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    self.cost += self.cost_model.branch;
                    let taken = self.truthy(cond)?;
                    let flow = if taken {
                        self.exec_block(then_blk)?
                    } else {
                        self.exec_block(else_blk)?
                    };
                    match flow {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
                StmtKind::While { cond, body } => loop {
                    self.tick()?;
                    self.cost += self.cost_model.branch;
                    if !self.truthy(cond)? {
                        break;
                    }
                    match self.exec_block(body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                    }
                },
                StmtKind::Break => return Ok(Flow::Break),
                StmtKind::Continue => return Ok(Flow::Continue),
                StmtKind::Nop => {}
                StmtKind::Return(_) => {
                    return Err(RuntimeError::IllegalFragmentOp("return in fragment"))
                }
                StmtKind::Print(_) => {
                    return Err(RuntimeError::IllegalFragmentOp("print in fragment"))
                }
                StmtKind::ExprStmt(_) => {
                    return Err(RuntimeError::IllegalFragmentOp("call in fragment"))
                }
                StmtKind::HiddenCall { .. } => {
                    return Err(RuntimeError::IllegalFragmentOp("nested hidden call"))
                }
            }
        }
        Ok(Flow::Normal)
    }

    fn truthy(&mut self, cond: &Expr) -> Result<bool, RuntimeError> {
        match self.eval(cond)? {
            RtValue::Bool(b) => Ok(b),
            v => Err(RuntimeError::TypeMismatch {
                expected: "bool condition",
                found: v.type_name(),
            }),
        }
    }

    fn eval(&mut self, e: &Expr) -> Result<RtValue, RuntimeError> {
        Ok(match e {
            Expr::Const(v) => RtValue::from_const(*v),
            Expr::Local(id) => {
                let idx = id.index();
                if idx >= self.slots.len() {
                    return Err(RuntimeError::IllegalFragmentOp("out-of-range hidden slot"));
                }
                self.slots[idx].clone()
            }
            Expr::Unary { op, arg } => {
                self.cost += self.cost_model.unop;
                let a = self.eval(arg)?;
                ops::unop(*op, &a)?
            }
            Expr::Binary { op, lhs, rhs } => {
                // Short-circuit like the open side.
                if *op == hps_ir::BinOp::And {
                    self.cost += self.cost_model.binop;
                    return if self.truthy(lhs)? {
                        self.eval(rhs)
                    } else {
                        Ok(RtValue::Bool(false))
                    };
                }
                if *op == hps_ir::BinOp::Or {
                    self.cost += self.cost_model.binop;
                    return if self.truthy(lhs)? {
                        Ok(RtValue::Bool(true))
                    } else {
                        self.eval(rhs)
                    };
                }
                self.cost += self.cost_model.binop;
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                ops::binop(*op, &a, &b)?
            }
            Expr::BuiltinCall { builtin, args } => {
                self.cost += self.cost_model.builtin_cost(*builtin);
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                ops::builtin(*builtin, &vals)?
            }
            Expr::Global(_) => {
                return Err(RuntimeError::IllegalFragmentOp("global access in fragment"))
            }
            Expr::Index { .. } => {
                return Err(RuntimeError::IllegalFragmentOp("array access in fragment"))
            }
            Expr::FieldGet { .. } => {
                return Err(RuntimeError::IllegalFragmentOp("field access in fragment"))
            }
            Expr::Call { .. } => return Err(RuntimeError::IllegalFragmentOp("call in fragment")),
            Expr::NewArray { .. } | Expr::NewObject(_) => {
                return Err(RuntimeError::IllegalFragmentOp("allocation in fragment"))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hps_ir::{BinOp, FragLabel, LocalId, Stmt, Ty, Value};

    fn frag(body: Vec<Stmt>, params: usize, ret: Option<Expr>) -> Fragment {
        Fragment {
            label: FragLabel::new(0),
            params: (0..params).map(|i| (format!("p{i}"), Ty::Int)).collect(),
            body: Block::of(body),
            ret,
        }
    }

    #[test]
    fn updates_persistent_state_and_returns() {
        // vars = [a]; L0(p0): a = a + p0; return a * 2
        let f = frag(
            vec![Stmt::new(StmtKind::Assign {
                place: Place::Local(LocalId::new(0)),
                value: Expr::binary(
                    BinOp::Add,
                    Expr::local(LocalId::new(0)),
                    Expr::local(LocalId::new(1)),
                ),
            })],
            1,
            Some(Expr::binary(
                BinOp::Mul,
                Expr::local(LocalId::new(0)),
                Expr::int(2),
            )),
        );
        let mut vars = vec![RtValue::Int(10)];
        let out = run_fragment(&f, &mut vars, &[Value::Int(5)], &CostModel::new()).unwrap();
        assert_eq!(out.value, Value::Int(30));
        assert_eq!(vars[0], RtValue::Int(15));
        assert!(out.cost > 0);
    }

    #[test]
    fn hidden_loop_executes() {
        // vars=[sum, i]; L0(z): while (i < z) { sum = sum + i; i = i + 1; } ret sum
        let sum = LocalId::new(0);
        let i = LocalId::new(1);
        let z = LocalId::new(2);
        let body = vec![Stmt::new(StmtKind::While {
            cond: Expr::binary(BinOp::Lt, Expr::local(i), Expr::local(z)),
            body: Block::of(vec![
                Stmt::new(StmtKind::Assign {
                    place: Place::Local(sum),
                    value: Expr::binary(BinOp::Add, Expr::local(sum), Expr::local(i)),
                }),
                Stmt::new(StmtKind::Assign {
                    place: Place::Local(i),
                    value: Expr::binary(BinOp::Add, Expr::local(i), Expr::int(1)),
                }),
            ]),
        })];
        let f = frag(body, 1, Some(Expr::local(sum)));
        let mut vars = vec![RtValue::Int(0), RtValue::Int(3)];
        let out = run_fragment(&f, &mut vars, &[Value::Int(6)], &CostModel::new()).unwrap();
        // 3 + 4 + 5 = 12
        assert_eq!(out.value, Value::Int(12));
        assert_eq!(vars[1], RtValue::Int(6));
    }

    #[test]
    fn param_writes_do_not_leak_back() {
        // Writing a param slot is allowed inside the fragment but does not
        // affect persistent state.
        let f = frag(
            vec![Stmt::new(StmtKind::Assign {
                place: Place::Local(LocalId::new(1)),
                value: Expr::int(99),
            })],
            1,
            Some(Expr::local(LocalId::new(1))),
        );
        let mut vars = vec![RtValue::Int(7)];
        let out = run_fragment(&f, &mut vars, &[Value::Int(1)], &CostModel::new()).unwrap();
        assert_eq!(out.value, Value::Int(99));
        assert_eq!(vars[0], RtValue::Int(7));
    }

    #[test]
    fn rejects_illegal_ops() {
        let f = frag(vec![Stmt::new(StmtKind::Return(None))], 0, None);
        let err = run_fragment(&f, &mut [], &[], &CostModel::new()).unwrap_err();
        assert!(matches!(err, RuntimeError::IllegalFragmentOp(_)));

        let f = frag(vec![Stmt::new(StmtKind::Print(Expr::int(1)))], 0, None);
        assert!(run_fragment(&f, &mut [], &[], &CostModel::new()).is_err());
    }

    #[test]
    fn arg_count_mismatch_is_channel_error() {
        let f = frag(vec![], 2, None);
        let err = run_fragment(&f, &mut [], &[Value::Int(1)], &CostModel::new()).unwrap_err();
        assert!(matches!(err, RuntimeError::Channel(_)));
    }

    #[test]
    fn none_return_yields_any_placeholder() {
        let f = frag(vec![], 0, None);
        let out = run_fragment(&f, &mut [], &[], &CostModel::new()).unwrap();
        assert_eq!(out.value, Value::Int(0));
    }

    #[test]
    fn short_circuit_and_or() {
        // return (false && (1/0 == 0)) || true  -- must not trap
        let f = frag(
            vec![],
            0,
            Some(Expr::binary(
                BinOp::Or,
                Expr::binary(
                    BinOp::And,
                    Expr::bool(false),
                    Expr::binary(
                        BinOp::Eq,
                        Expr::binary(BinOp::Div, Expr::int(1), Expr::int(0)),
                        Expr::int(0),
                    ),
                ),
                Expr::bool(true),
            )),
        );
        let out = run_fragment(&f, &mut [], &[], &CostModel::new()).unwrap();
        assert_eq!(out.value, Value::Bool(true));
    }
}
