//! The shard pool: multi-core execution of hidden session state.
//!
//! Hidden runtime values are built on `Rc<RefCell<…>>` ([`crate::value`])
//! and are deliberately **not `Send`** — sharing them across threads would
//! need locking on the interpreter's hot path. Instead of making values
//! thread-safe, the session server shards *ownership*: a pool of N
//! executor threads, each owning the complete state (one [`SecureServer`]
//! plus replay window per session) of every session hashed to it
//! (`session_id % shards`). A hidden value is created, mutated and dropped
//! on exactly one thread for its whole life, so the hot path stays
//! lock-free, while the requests and replies that *do* cross threads are
//! plain `Send` data: scalar [`hps_ir::Value`] arguments in, encoded
//! response frames (`Vec<u8>`) out.
//!
//! Connection threads feed the pool through **per-shard bounded channels**
//! ([`std::sync::mpsc::sync_channel`]): a shard running behind exerts
//! back-pressure on exactly the connections talking to it, never on other
//! shards. Enqueue depth is observed into the
//! `hps_server_shard_queue_depth` histogram and per-shard counters
//! ([`ShardStats`]) record how the load spread, so a saturated shard is
//! visible in telemetry rather than a mystery.
//!
//! Because a session's calls are executed in order by a single owner
//! thread regardless of the shard count, the adversary-visible view —
//! program output, reply bytes, trace events, interaction counts — is
//! byte-identical for `--shards 1` and `--shards N`
//! (`crates/suite/tests/shard_equivalence.rs` pins this, chaos included).

use crate::bytecode::VmCache;
use crate::channel::{CallReply, PendingCall};
use crate::server::{ReplayCache, SecureServer, SeqCheck};
use crate::wire::Response;
use hps_ir::{ComponentId, HiddenProgram};
use hps_telemetry::Histogram;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Default bound of each per-shard request queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Default replay-window capacity per session (the protocol minimum: a
/// retransmit can only be of the last completed sequence).
pub const DEFAULT_REPLAY_CAPACITY: usize = 1;

/// Counters shared by every thread of a session server. Updated with
/// relaxed atomics (the queue-depth histogram takes a short mutex at
/// enqueue time only — never on the executor hot path).
#[derive(Default, Debug)]
pub(crate) struct StatsInner {
    pub(crate) connections: AtomicU64,
    pub(crate) sessions: AtomicU64,
    pub(crate) calls: AtomicU64,
    pub(crate) replays: AtomicU64,
    pub(crate) replay_evictions: AtomicU64,
    pub(crate) chaos_kills: AtomicU64,
    /// VM counters from *legacy* (sessionless) connections, whose private
    /// servers die with the connection; shard caches are read live instead.
    pub(crate) legacy_vm_compiles: AtomicU64,
    pub(crate) legacy_vm_cache_hits: AtomicU64,
    pub(crate) queue_depth: Mutex<Histogram>,
    pub(crate) shards: Mutex<Vec<Arc<ShardCounters>>>,
}

impl StatsInner {
    pub(crate) fn queue_depth_histogram(&self) -> Histogram {
        self.queue_depth.lock().expect("queue depth lock").clone()
    }

    pub(crate) fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .lock()
            .expect("shard table lock")
            .iter()
            .enumerate()
            .map(|(shard, c)| ShardStats {
                shard,
                calls: c.calls.load(Ordering::Relaxed),
                fragments: c.fragments.load(Ordering::Relaxed),
                cost_units: c.cost.load(Ordering::Relaxed),
                sessions: c.sessions.load(Ordering::Relaxed),
                max_queue_depth: c.max_depth.load(Ordering::Relaxed),
                vm_compiles: c.vm.as_ref().map_or(0, |v| v.compiles()),
                vm_cache_hits: c.vm.as_ref().map_or(0, |v| v.cache_hits()),
                compile_nanos: c.vm.as_ref().map_or(0, |v| v.compile_nanos()),
                exec_nanos: c.exec_nanos.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// Per-shard live counters (internal; snapshot via [`ShardStats`]).
#[derive(Default, Debug)]
pub(crate) struct ShardCounters {
    calls: AtomicU64,
    fragments: AtomicU64,
    cost: AtomicU64,
    sessions: AtomicU64,
    depth: AtomicU64,
    max_depth: AtomicU64,
    /// Wall-clock nanoseconds this shard spent executing sequenced units.
    exec_nanos: AtomicU64,
    /// The shard's shared compile-once bytecode cache (`None` = tree-walk).
    /// Every session of the shard compiles into — and hits — this cache.
    vm: Option<Arc<VmCache>>,
}

/// Snapshot of one shard executor's counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ShardStats {
    /// Shard index (`0..shards`).
    pub shard: usize,
    /// Logical calls this shard executed (batch entries count).
    pub calls: u64,
    /// Hidden fragments this shard ran (one per successful call).
    pub fragments: u64,
    /// Virtual cost units this shard's fragments spent.
    pub cost_units: u64,
    /// Sessions owned by this shard.
    pub sessions: u64,
    /// Deepest request queue observed at an enqueue.
    pub max_queue_depth: u64,
    /// Fragments lowered to bytecode by this shard's compile-once cache
    /// (0 when the VM is disabled).
    pub vm_compiles: u64,
    /// Fragment executions this shard served from compiled bytecode.
    pub vm_cache_hits: u64,
    /// Wall-clock nanoseconds spent compiling fragments on this shard.
    /// Wall-clock fields feed load attribution (`BENCH_*.json`) only —
    /// they never enter deterministic metrics snapshots.
    pub compile_nanos: u64,
    /// Wall-clock nanoseconds spent executing sequenced units (includes
    /// compile time of first-touch fragments).
    pub exec_nanos: u64,
}

/// The shard a session is owned by. Pure function of the session id, so
/// every connection of a session — including reconnects — lands on the
/// same owner thread.
pub(crate) fn shard_of(session: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (session % shards as u64) as usize
}

/// A request forwarded from a connection thread to a shard executor. Only
/// `Send` data crosses: scalar call arguments in, encoded frames out.
pub(crate) enum ExecMsg {
    /// Ensure the session exists; reply with its next expected sequence.
    Hello { session: u64, reply: Sender<u64> },
    /// Execute-or-replay one sequenced unit; reply with the encoded
    /// `Response` frame to send (or cache).
    Seq {
        session: u64,
        seq: u64,
        calls: Vec<PendingCall>,
        batch: bool,
        reply: Sender<Vec<u8>>,
    },
    /// Free one activation's hidden state (fire-and-forget).
    Release {
        session: u64,
        component: ComponentId,
        key: u64,
    },
}

/// The cloneable handle connection threads use to reach the pool. Routes
/// by session id and records queue-depth telemetry at every enqueue.
#[derive(Clone)]
pub(crate) struct ShardSenders {
    senders: Vec<SyncSender<ExecMsg>>,
    counters: Vec<Arc<ShardCounters>>,
    stats: Arc<StatsInner>,
}

impl ShardSenders {
    /// Enqueues `msg` on the owning shard's bounded queue, blocking for
    /// back-pressure when the shard is `queue_capacity` deep. `Err` means
    /// the executor exited — only possible outside a clean drain.
    pub(crate) fn send(&self, session: u64, msg: ExecMsg) -> Result<(), ()> {
        let shard = shard_of(session, self.senders.len());
        let c = &self.counters[shard];
        let depth = c.depth.fetch_add(1, Ordering::Relaxed) + 1;
        c.max_depth.fetch_max(depth, Ordering::Relaxed);
        self.stats
            .queue_depth
            .lock()
            .expect("queue depth lock")
            .record(depth);
        self.senders[shard].send(msg).map_err(|_| {
            c.depth.fetch_sub(1, Ordering::Relaxed);
        })
    }
}

/// The pool: N shard executors plus the origin copy of their senders.
///
/// Lifecycle: connection threads clone [`ShardSenders`]; an executor exits
/// when *every* sender to it is gone. [`ShardPool::drain`] drops the
/// pool's own senders and joins the threads, so in-flight requests from
/// still-living connections are always answered first — the graceful half
/// of `SessionServerHandle::stop`.
pub(crate) struct ShardPool {
    senders: ShardSenders,
    threads: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns `shards` executor threads (min 1), each owning the sessions
    /// hashed to it, fed by a bounded queue of `queue_capacity`. With
    /// `fragment_vm` on, each shard gets one compile-once bytecode cache
    /// shared by all its sessions (fragments lower at most once per shard).
    pub(crate) fn spawn(
        shards: usize,
        queue_capacity: usize,
        replay_capacity: usize,
        fragment_vm: bool,
        hidden: &HiddenProgram,
        stats: &Arc<StatsInner>,
    ) -> ShardPool {
        let shards = shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut counters = Vec::with_capacity(shards);
        let mut threads = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = std::sync::mpsc::sync_channel(queue_capacity.max(1));
            let c = Arc::new(ShardCounters {
                vm: fragment_vm.then(|| Arc::new(VmCache::for_program(hidden))),
                ..ShardCounters::default()
            });
            let thread = std::thread::Builder::new()
                .name(format!("hps-shard-{shard}"))
                .spawn({
                    let hidden = hidden.clone();
                    let stats = Arc::clone(stats);
                    let c = Arc::clone(&c);
                    move || run_shard_executor(rx, hidden, stats, c, replay_capacity)
                })
                .expect("spawn shard executor");
            senders.push(tx);
            counters.push(c);
            threads.push(thread);
        }
        *stats.shards.lock().expect("shard table lock") = counters.clone();
        ShardPool {
            senders: ShardSenders {
                senders,
                counters,
                stats: Arc::clone(stats),
            },
            threads,
        }
    }

    /// A routing handle for a connection thread.
    pub(crate) fn senders(&self) -> ShardSenders {
        self.senders.clone()
    }

    /// Graceful drain: drops the pool's senders and joins every executor.
    /// Each executor keeps serving until the last connection-held sender
    /// drops, so no in-flight request is abandoned.
    pub(crate) fn drain(self) {
        let ShardPool { senders, threads } = self;
        drop(senders);
        for t in threads {
            let _ = t.join();
        }
    }
}

/// Per-session secure state: one [`SecureServer`] plus the replay window.
struct SessionState {
    server: SecureServer,
    replay: ReplayCache<Vec<u8>>,
}

/// One shard's executor loop: owns the hidden state of every session
/// hashed here, applies the replay cache, and hands encoded response
/// frames back to the connection threads. Exits when the last sender
/// (pool + connections) drops.
fn run_shard_executor(
    rx: Receiver<ExecMsg>,
    hidden: HiddenProgram,
    stats: Arc<StatsInner>,
    counters: Arc<ShardCounters>,
    replay_capacity: usize,
) {
    let mut sessions: HashMap<u64, SessionState> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        counters.depth.fetch_sub(1, Ordering::Relaxed);
        match msg {
            ExecMsg::Hello { session, reply } => {
                let state = open_session(
                    &mut sessions,
                    session,
                    &hidden,
                    &stats,
                    &counters,
                    replay_capacity,
                );
                let _ = reply.send(state.replay.next_seq());
            }
            ExecMsg::Seq {
                session,
                seq,
                calls,
                batch,
                reply,
            } => {
                let state = open_session(
                    &mut sessions,
                    session,
                    &hidden,
                    &stats,
                    &counters,
                    replay_capacity,
                );
                let bytes = match state.replay.check(seq) {
                    SeqCheck::Fresh => {
                        let t0 = std::time::Instant::now();
                        let (resp, served, cost) = execute(&mut state.server, &calls, batch);
                        counters
                            .exec_nanos
                            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        stats.calls.fetch_add(served, Ordering::Relaxed);
                        counters.calls.fetch_add(served, Ordering::Relaxed);
                        counters.fragments.fetch_add(served, Ordering::Relaxed);
                        counters.cost.fetch_add(cost, Ordering::Relaxed);
                        let mut buf = Vec::new();
                        resp.encode_into(&mut buf);
                        let evicted = state.replay.store(seq, buf.clone());
                        stats.replay_evictions.fetch_add(evicted, Ordering::Relaxed);
                        buf
                    }
                    SeqCheck::Replay(cached) => {
                        stats.replays.fetch_add(1, Ordering::Relaxed);
                        cached.clone()
                    }
                    SeqCheck::Gap { expected } => {
                        let resp = Response::Error(format!(
                            "sequence gap: got {seq}, expected {expected}"
                        ));
                        let mut buf = Vec::new();
                        resp.encode_into(&mut buf);
                        buf
                    }
                };
                let _ = reply.send(bytes);
            }
            ExecMsg::Release {
                session,
                component,
                key,
            } => {
                if let Some(state) = sessions.get_mut(&session) {
                    state.server.release(component, key);
                }
            }
        }
    }
}

fn open_session<'a>(
    sessions: &'a mut HashMap<u64, SessionState>,
    session: u64,
    hidden: &HiddenProgram,
    stats: &StatsInner,
    counters: &ShardCounters,
    replay_capacity: usize,
) -> &'a mut SessionState {
    sessions.entry(session).or_insert_with(|| {
        stats.sessions.fetch_add(1, Ordering::Relaxed);
        counters.sessions.fetch_add(1, Ordering::Relaxed);
        // Sessions share the shard's compile-once cache: the shard thread
        // exclusively owns its sessions, but compiled code is plain
        // `Send + Sync` data, so sharing it is safe and each fragment
        // lowers at most once per shard.
        let server = match &counters.vm {
            Some(cache) => SecureServer::new(hidden.clone()).with_vm_cache(Arc::clone(cache)),
            None => SecureServer::new(hidden.clone()).with_fragment_vm(false),
        };
        SessionState {
            server,
            replay: ReplayCache::with_capacity(replay_capacity),
        }
    })
}

/// Executes one sequenced unit against a session's secure server,
/// returning the response, the number of logical calls served, and the
/// virtual cost they spent.
fn execute(server: &mut SecureServer, calls: &[PendingCall], batch: bool) -> (Response, u64, u64) {
    if batch {
        match server.call_batch(calls) {
            Ok(outs) => {
                let n = outs.len() as u64;
                let cost: u64 = outs.iter().map(|out| out.cost).sum();
                (
                    Response::Batch(
                        outs.into_iter()
                            .map(|out| CallReply {
                                value: out.value,
                                server_cost: out.cost,
                            })
                            .collect(),
                    ),
                    n,
                    cost,
                )
            }
            Err(e) => (Response::Error(e.to_string()), 0, 0),
        }
    } else {
        let c = &calls[0];
        match server.call(c.component, c.key, c.label, &c.args) {
            Ok(out) => (
                Response::Reply {
                    value: out.value,
                    server_cost: out.cost,
                },
                1,
                out.cost,
            ),
            Err(e) => (Response::Error(e.to_string()), 0, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_hash_to_stable_shards() {
        for session in 0..100u64 {
            assert_eq!(shard_of(session, 1), 0);
            let s4 = shard_of(session, 4);
            assert!(s4 < 4);
            assert_eq!(s4, shard_of(session, 4), "routing must be stable");
        }
        // All shards are reachable.
        let hit: std::collections::HashSet<usize> = (0..100u64).map(|s| shard_of(s, 4)).collect();
        assert_eq!(hit.len(), 4);
    }

    #[test]
    fn exec_messages_are_send() {
        // The whole sharding design rests on this: requests and replies
        // cross threads, hidden values never do.
        fn assert_send<T: Send>() {}
        assert_send::<ExecMsg>();
        assert_send::<Vec<u8>>();
    }
}
