//! The shard pool: multi-core execution of hidden session state, under
//! supervision.
//!
//! Hidden runtime values are built on `Rc<RefCell<…>>` ([`crate::value`])
//! and are deliberately **not `Send`** — sharing them across threads would
//! need locking on the interpreter's hot path. Instead of making values
//! thread-safe, the session server shards *ownership*: a pool of N
//! executor threads, each owning the complete state (one [`SecureServer`]
//! plus replay window per session) of every session hashed to it
//! (`session_id % shards`). A hidden value is created, mutated and dropped
//! on exactly one thread for its whole life, so the hot path stays
//! lock-free, while the requests and replies that *do* cross threads are
//! plain `Send` data: scalar [`hps_ir::Value`] arguments in, encoded
//! response frames (`Vec<u8>`) out.
//!
//! Connection threads feed the pool through **per-shard bounded channels**
//! ([`std::sync::mpsc::sync_channel`]): a shard running behind exerts
//! back-pressure on exactly the connections talking to it, never on other
//! shards. Enqueue depth is observed into the
//! `hps_server_shard_queue_depth` histogram and per-shard counters
//! ([`ShardStats`]) record how the load spread, so a saturated shard is
//! visible in telemetry rather than a mystery.
//!
//! ## Crash resilience (DESIGN.md §12)
//!
//! Executors are *supervised*: a dedicated supervisor thread detects a
//! dead executor (a crash fault, a bug, or a deliberate
//! `SessionServerHandle::kill_shard`) and respawns it behind the same
//! routing slot — senders waiting on the dead shard simply re-enqueue on
//! the replacement. Per-request fragment execution runs under
//! `catch_unwind`: a panic is contained, counted
//! (`hps_server_panics_caught_total`), and the offending session is
//! rebuilt from its [`SessionJournal`] and retried once; a second panic —
//! deterministic fragments fail deterministically — poisons only that
//! session, never the shard. Because fragments are deterministic, a
//! respawned executor rebuilds any session's hidden state by replaying
//! the journal of committed units, and the replay windows come back at
//! the same sequence numbers, so exactly-once semantics survive recovery
//! and the adversary-visible trace is unchanged.
//!
//! Because a session's calls are executed in order by a single owner
//! thread regardless of the shard count, the adversary-visible view —
//! program output, reply bytes, trace events, interaction counts — is
//! byte-identical for `--shards 1` and `--shards N`
//! (`crates/suite/tests/shard_equivalence.rs` pins this, chaos included).

use crate::bytecode::VmCache;
use crate::channel::{CallReply, PendingCall};
use crate::fault::CrashConfig;
use crate::journal::{journal_path, load_disk_journal, DiskJournal, JournalOp, SessionJournal};
use crate::memo::MemoTable;
use crate::server::{ReplayCache, SecureServer, SeqCheck};
use crate::wire::Response;
use hps_ir::{ComponentId, HiddenProgram};
use hps_telemetry::Histogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default bound of each per-shard request queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Default replay-window capacity per session (the protocol minimum: a
/// retransmit can only be of the last completed sequence).
pub const DEFAULT_REPLAY_CAPACITY: usize = 1;

/// How long a connection thread waits for the supervisor to respawn a
/// dead shard before giving up on an enqueue.
const RESPAWN_WAIT: Duration = Duration::from_secs(5);

/// Counters shared by every thread of a session server. Updated with
/// relaxed atomics (the histograms take a short mutex at enqueue /
/// recovery time only — never on the executor hot path).
#[derive(Default, Debug)]
pub(crate) struct StatsInner {
    pub(crate) connections: AtomicU64,
    pub(crate) sessions: AtomicU64,
    pub(crate) calls: AtomicU64,
    pub(crate) replays: AtomicU64,
    pub(crate) replay_evictions: AtomicU64,
    pub(crate) chaos_kills: AtomicU64,
    /// Fragment panics contained by `catch_unwind` (injected or genuine).
    pub(crate) panics_caught: AtomicU64,
    /// Dead executors respawned by the supervisor.
    pub(crate) shard_restarts: AtomicU64,
    /// Sessions rebuilt from a journal (respawn or process restart).
    pub(crate) journal_replays: AtomicU64,
    /// VM counters from *legacy* (sessionless) connections, whose private
    /// servers die with the connection; shard caches are read live instead.
    pub(crate) legacy_vm_compiles: AtomicU64,
    pub(crate) legacy_vm_cache_hits: AtomicU64,
    /// Memo counters from legacy connections (same lifecycle as the legacy
    /// VM counters above); shard memo tables are read live instead.
    pub(crate) legacy_memo_hits: AtomicU64,
    pub(crate) legacy_memo_misses: AtomicU64,
    pub(crate) legacy_memo_evictions: AtomicU64,
    pub(crate) queue_depth: Mutex<Histogram>,
    /// Wall-clock microseconds per session rebuild. Live-scrape /
    /// `BENCH_*.json` exposition only — never part of a deterministic
    /// snapshot (see OBSERVABILITY.md).
    pub(crate) recovery_latency: Mutex<Histogram>,
    /// Shard indexes queued for a deliberate kill (`kill_shard`); the
    /// supervisor services these on its next tick.
    pub(crate) kill_requests: Mutex<Vec<usize>>,
    pub(crate) shards: Mutex<Vec<Arc<ShardCounters>>>,
}

impl StatsInner {
    pub(crate) fn queue_depth_histogram(&self) -> Histogram {
        self.queue_depth.lock().expect("queue depth lock").clone()
    }

    pub(crate) fn recovery_latency_histogram(&self) -> Histogram {
        self.recovery_latency
            .lock()
            .expect("recovery latency lock")
            .clone()
    }

    pub(crate) fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .lock()
            .expect("shard table lock")
            .iter()
            .enumerate()
            .map(|(shard, c)| ShardStats {
                shard,
                calls: c.calls.load(Ordering::Relaxed),
                fragments: c.fragments.load(Ordering::Relaxed),
                cost_units: c.cost.load(Ordering::Relaxed),
                sessions: c.sessions.load(Ordering::Relaxed),
                max_queue_depth: c.max_depth.load(Ordering::Relaxed),
                vm_compiles: c.vm.as_ref().map_or(0, |v| v.compiles()),
                vm_cache_hits: c.vm.as_ref().map_or(0, |v| v.cache_hits()),
                memo_hits: c.memo.as_ref().map_or(0, |m| m.hits()),
                memo_misses: c.memo.as_ref().map_or(0, |m| m.misses()),
                memo_evictions: c.memo.as_ref().map_or(0, |m| m.evictions()),
                compile_nanos: c.vm.as_ref().map_or(0, |v| v.compile_nanos()),
                exec_nanos: c.exec_nanos.load(Ordering::Relaxed),
                restarts: c.restarts.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// Per-shard live counters (internal; snapshot via [`ShardStats`]).
#[derive(Default, Debug)]
pub(crate) struct ShardCounters {
    calls: AtomicU64,
    fragments: AtomicU64,
    cost: AtomicU64,
    sessions: AtomicU64,
    depth: AtomicU64,
    max_depth: AtomicU64,
    /// Wall-clock nanoseconds this shard spent executing sequenced units.
    exec_nanos: AtomicU64,
    /// Executor respawns the supervisor performed for this shard.
    restarts: AtomicU64,
    /// The shard's shared compile-once bytecode cache (`None` = tree-walk).
    /// Every session of the shard compiles into — and hits — this cache.
    /// `Send + Sync` atomics only, so it survives executor respawns.
    vm: Option<Arc<VmCache>>,
    /// The shard's shared pure-fragment memo table (`None` = memoization
    /// off). Shared by every session of the shard — memoizable fragments
    /// read no hidden state, so a cached result is valid across sessions —
    /// and, like the VM cache, it survives executor respawns.
    memo: Option<Arc<MemoTable>>,
}

/// Snapshot of one shard executor's counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ShardStats {
    /// Shard index (`0..shards`).
    pub shard: usize,
    /// Logical calls this shard executed (batch entries count).
    pub calls: u64,
    /// Hidden fragments this shard ran (one per successful call).
    pub fragments: u64,
    /// Virtual cost units this shard's fragments spent.
    pub cost_units: u64,
    /// Sessions owned by this shard.
    pub sessions: u64,
    /// Deepest request queue observed at an enqueue.
    pub max_queue_depth: u64,
    /// Fragments lowered to bytecode by this shard's compile-once cache
    /// (0 when the VM is disabled).
    pub vm_compiles: u64,
    /// Fragment executions this shard served from compiled bytecode.
    pub vm_cache_hits: u64,
    /// Pure-fragment calls this shard answered from its memo table
    /// (0 when memoization is disabled).
    pub memo_hits: u64,
    /// Fragment executions that ran in full and were considered for the
    /// memo table (memoizable or not).
    pub memo_misses: u64,
    /// Memo entries evicted by the table's FIFO capacity bound.
    pub memo_evictions: u64,
    /// Wall-clock nanoseconds spent compiling fragments on this shard.
    /// Wall-clock fields feed load attribution (`BENCH_*.json`) only —
    /// they never enter deterministic metrics snapshots.
    pub compile_nanos: u64,
    /// Wall-clock nanoseconds spent executing sequenced units (includes
    /// compile time of first-touch fragments).
    pub exec_nanos: u64,
    /// Times this shard's executor died and was respawned (sums to
    /// `hps_server_shard_restarts_total` across shards).
    pub restarts: u64,
}

/// The shard a session is owned by. Pure function of the session id, so
/// every connection of a session — including reconnects — lands on the
/// same owner thread.
pub(crate) fn shard_of(session: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (session % shards as u64) as usize
}

/// A request forwarded from a connection thread to a shard executor. Only
/// `Send` data crosses: scalar call arguments in, encoded frames out.
/// Calls are `Arc`-shared so a connection thread can cheaply re-enqueue
/// the same unit after an executor died mid-stream.
pub(crate) enum ExecMsg {
    /// Ensure the session exists (rebuilding it from a journal if this
    /// shard — or process — is meeting it after a crash); reply with its
    /// next expected sequence.
    Hello { session: u64, reply: Sender<u64> },
    /// Execute-or-replay one sequenced unit; reply with the encoded
    /// `Response` frame to send (or cache).
    Seq {
        session: u64,
        seq: u64,
        calls: Arc<Vec<PendingCall>>,
        batch: bool,
        reply: Sender<Vec<u8>>,
    },
    /// Free one activation's hidden state (fire-and-forget).
    Release {
        session: u64,
        component: ComponentId,
        key: u64,
    },
    /// Deliberate executor suicide (kill-switch faults, `kill_shard`).
    /// The supervisor respawns the shard; sessions rebuild by replay.
    Crash,
}

/// The cloneable handle connection threads use to reach the pool. Routes
/// by session id and records queue-depth telemetry at every enqueue.
///
/// Senders live behind per-shard **slots**: when an executor dies the
/// supervisor swaps a fresh sender into its slot, so an enqueue that hit
/// the dead channel simply waits out the respawn and retries. A `None`
/// slot means the pool is draining and the send fails for good.
#[derive(Clone)]
pub(crate) struct ShardSenders {
    slots: Arc<Vec<Mutex<Option<SyncSender<ExecMsg>>>>>,
    counters: Vec<Arc<ShardCounters>>,
    stats: Arc<StatsInner>,
}

impl ShardSenders {
    /// Enqueues `msg` on the owning shard's bounded queue, blocking for
    /// back-pressure when the shard is `queue_capacity` deep and waiting
    /// out a supervisor respawn when the shard died. `Err` means the pool
    /// drained (or the respawn wait expired).
    pub(crate) fn send(&self, session: u64, msg: ExecMsg) -> Result<(), ()> {
        let shard = shard_of(session, self.slots.len());
        let c = &self.counters[shard];
        let depth = c.depth.fetch_add(1, Ordering::Relaxed) + 1;
        c.max_depth.fetch_max(depth, Ordering::Relaxed);
        self.stats
            .queue_depth
            .lock()
            .expect("queue depth lock")
            .record(depth);
        let deadline = Instant::now() + RESPAWN_WAIT;
        let mut msg = msg;
        loop {
            // Clone the sender out of the slot so the bounded (blocking)
            // send itself never holds the slot lock.
            let sender = self.slots[shard].lock().expect("shard slot lock").clone();
            let Some(sender) = sender else {
                depth_sub(c);
                return Err(());
            };
            match sender.send(msg) {
                Ok(()) => return Ok(()),
                Err(std::sync::mpsc::SendError(returned)) => {
                    // The executor died with our message unreceived. Wait
                    // for the supervisor to swap in its replacement.
                    if Instant::now() >= deadline {
                        depth_sub(c);
                        return Err(());
                    }
                    msg = returned;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
}

/// Saturating queue-depth decrement: a respawn resets the counter to zero
/// underneath in-flight accounting, so pairs can go missing — saturation
/// keeps the count approximately right instead of wrapping.
fn depth_sub(c: &ShardCounters) {
    let _ = c
        .depth
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
            Some(d.saturating_sub(1))
        });
}

/// Spawn-time configuration of a shard pool.
#[derive(Clone, Debug)]
pub(crate) struct ShardConfig {
    pub(crate) shards: usize,
    pub(crate) queue_capacity: usize,
    pub(crate) replay_capacity: usize,
    pub(crate) fragment_vm: bool,
    /// Memoize provably-pure fragments in a per-shard [`MemoTable`].
    pub(crate) fragment_memo: bool,
    /// Per-session cap on the in-memory journal ring.
    pub(crate) journal_limit: usize,
    /// Directory for checksummed on-disk journals (`--journal-dir`);
    /// `None` keeps journaling in-memory only.
    pub(crate) journal_dir: Option<PathBuf>,
    /// Seeded crash-injection schedule (kill / panic rates).
    pub(crate) crash: Option<CrashConfig>,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shards: 1,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            replay_capacity: DEFAULT_REPLAY_CAPACITY,
            fragment_vm: true,
            fragment_memo: true,
            journal_limit: crate::journal::DEFAULT_JOURNAL_LIMIT,
            journal_dir: None,
            crash: None,
        }
    }
}

/// Everything one executor incarnation needs — and everything the
/// supervisor needs to spawn the next incarnation of the same shard.
/// The journal map and counters are shared across incarnations; the
/// sessions' hidden state is not (it is rebuilt by replay).
#[derive(Clone)]
struct ShardContext {
    shard: usize,
    hidden: HiddenProgram,
    stats: Arc<StatsInner>,
    counters: Arc<ShardCounters>,
    replay_capacity: usize,
    journal_limit: usize,
    journal_dir: Option<PathBuf>,
    /// The shard's committed-op journals, one ring per session. Held
    /// *outside* the executor thread so it survives executor death.
    journal: Arc<Mutex<HashMap<u64, SessionJournal>>>,
}

/// The pool: N supervised shard executors plus the routing slots.
///
/// Lifecycle: connection threads clone [`ShardSenders`] and enqueue
/// through the slots; the supervisor respawns any executor that dies.
/// [`ShardPool::drain`] stops the supervisor, which withdraws every
/// slot's sender and joins the executors — each keeps serving until its
/// queue is empty, so no accepted request is abandoned.
pub(crate) struct ShardPool {
    senders: ShardSenders,
    stop: Arc<AtomicBool>,
    supervisor: JoinHandle<()>,
}

impl ShardPool {
    /// Spawns `config.shards` executor threads (min 1), each owning the
    /// sessions hashed to it, fed by a bounded queue, plus the supervisor
    /// that keeps them alive. With `fragment_vm` on, each shard gets one
    /// compile-once bytecode cache shared by all its sessions (and all
    /// its incarnations — compiled code is `Send + Sync`).
    pub(crate) fn spawn(
        config: ShardConfig,
        hidden: &HiddenProgram,
        stats: &Arc<StatsInner>,
    ) -> ShardPool {
        let shards = config.shards.max(1);
        let queue_capacity = config.queue_capacity.max(1);
        let mut slot_vec = Vec::with_capacity(shards);
        let mut counters = Vec::with_capacity(shards);
        let mut contexts = Vec::with_capacity(shards);
        let mut threads = Vec::with_capacity(shards);
        for shard in 0..shards {
            let c = Arc::new(ShardCounters {
                vm: config
                    .fragment_vm
                    .then(|| Arc::new(VmCache::for_program(hidden))),
                memo: config
                    .fragment_memo
                    .then(|| Arc::new(MemoTable::for_program(hidden))),
                ..ShardCounters::default()
            });
            let ctx = ShardContext {
                shard,
                hidden: hidden.clone(),
                stats: Arc::clone(stats),
                counters: Arc::clone(&c),
                replay_capacity: config.replay_capacity,
                journal_limit: config.journal_limit.max(1),
                journal_dir: config.journal_dir.clone(),
                journal: Arc::new(Mutex::new(HashMap::new())),
            };
            let (tx, thread) = spawn_executor(&ctx, queue_capacity, config.crash, 0);
            slot_vec.push(Mutex::new(Some(tx)));
            counters.push(c);
            contexts.push(ctx);
            threads.push(thread);
        }
        *stats.shards.lock().expect("shard table lock") = counters.clone();
        let slots = Arc::new(slot_vec);
        let stop = Arc::new(AtomicBool::new(false));
        let supervisor = std::thread::Builder::new()
            .name("hps-shard-supervisor".into())
            .spawn({
                let slots = Arc::clone(&slots);
                let stats = Arc::clone(stats);
                let stop = Arc::clone(&stop);
                let crash = config.crash;
                move || supervise(slots, contexts, threads, queue_capacity, crash, stats, stop)
            })
            .expect("spawn shard supervisor");
        ShardPool {
            senders: ShardSenders {
                slots,
                counters,
                stats: Arc::clone(stats),
            },
            stop,
            supervisor,
        }
    }

    /// A routing handle for a connection thread.
    pub(crate) fn senders(&self) -> ShardSenders {
        self.senders.clone()
    }

    /// Graceful drain: stops the supervisor, which withdraws every slot's
    /// sender and joins every executor after it finishes its queue.
    pub(crate) fn drain(self) {
        self.stop.store(true, Ordering::Release);
        let _ = self.supervisor.join();
    }
}

fn spawn_executor(
    ctx: &ShardContext,
    queue_capacity: usize,
    crash: Option<CrashConfig>,
    incarnation: u64,
) -> (SyncSender<ExecMsg>, JoinHandle<()>) {
    let (tx, rx) = std::sync::mpsc::sync_channel(queue_capacity);
    let thread = std::thread::Builder::new()
        .name(format!("hps-shard-{}", ctx.shard))
        .spawn({
            let ctx = ctx.clone();
            move || run_shard_executor(rx, ctx, crash, incarnation)
        })
        .expect("spawn shard executor");
    (tx, thread)
}

/// The supervisor loop: services deliberate kill requests, respawns dead
/// executors behind their routing slots, and performs the graceful drain
/// when the pool stops.
fn supervise(
    slots: Arc<Vec<Mutex<Option<SyncSender<ExecMsg>>>>>,
    contexts: Vec<ShardContext>,
    mut threads: Vec<JoinHandle<()>>,
    queue_capacity: usize,
    crash: Option<CrashConfig>,
    stats: Arc<StatsInner>,
    stop: Arc<AtomicBool>,
) {
    let mut incarnations: Vec<u64> = vec![0; threads.len()];
    while !stop.load(Ordering::Acquire) {
        // Deliberate kills (tests, `loadgen --crash`).
        let kills: Vec<usize> =
            std::mem::take(&mut *stats.kill_requests.lock().expect("kill requests lock"));
        for shard in kills {
            if shard >= threads.len() {
                continue;
            }
            let sender = slots[shard].lock().expect("shard slot lock").clone();
            if let Some(tx) = sender {
                if let Err(TrySendError::Full(_)) = tx.try_send(ExecMsg::Crash) {
                    // Queue saturated; retry on the next tick.
                    stats
                        .kill_requests
                        .lock()
                        .expect("kill requests lock")
                        .push(shard);
                }
            }
        }
        // Respawn any executor that died — killed, panicked, whatever.
        for shard in 0..threads.len() {
            if !threads[shard].is_finished() {
                continue;
            }
            let ctx = &contexts[shard];
            incarnations[shard] += 1;
            let (tx, thread) = spawn_executor(ctx, queue_capacity, crash, incarnations[shard]);
            let old = std::mem::replace(&mut threads[shard], thread);
            let _ = old.join();
            // Messages queued-but-unreceived died with the old channel;
            // their depth contributions are wiped with this reset.
            ctx.counters.depth.store(0, Ordering::Relaxed);
            *slots[shard].lock().expect("shard slot lock") = Some(tx);
            ctx.counters.restarts.fetch_add(1, Ordering::Relaxed);
            stats.shard_restarts.fetch_add(1, Ordering::Relaxed);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    // Drain: withdraw every sender so executors exit after finishing
    // their queues, then join them.
    for slot in slots.iter() {
        *slot.lock().expect("shard slot lock") = None;
    }
    for t in threads {
        let _ = t.join();
    }
}

/// One session's slot on its owner shard: live state, or a poisoned
/// tombstone after an unrecoverable panic. Poisoning is per-session by
/// design — the blast radius of a bad fragment is one session, never the
/// shard or its other sessions.
enum SessionSlot {
    Live(Box<SessionState>),
    Poisoned { reason: String, next_seq: u64 },
}

/// Per-session secure state: one [`SecureServer`], the replay window,
/// and the optional on-disk journal append handle.
struct SessionState {
    server: SecureServer,
    replay: ReplayCache<Vec<u8>>,
    disk: Option<DiskJournal>,
}

/// One shard's executor loop: owns the hidden state of every session
/// hashed here, applies the replay cache, journals committed units, and
/// hands encoded response frames back to the connection threads. Exits
/// when the last sender drops (drain), on [`ExecMsg::Crash`], or on an
/// injected kill — the supervisor respawns the latter two.
fn run_shard_executor(
    rx: Receiver<ExecMsg>,
    ctx: ShardContext,
    crash: Option<CrashConfig>,
    incarnation: u64,
) {
    let mut chaos = crash.map(|c| {
        if c.panic_per_mille > 0 {
            silence_injected_panics();
        }
        // Deterministic per (seed, shard, incarnation, event index).
        let seed = c.seed ^ ((ctx.shard as u64) << 32) ^ incarnation;
        (StdRng::seed_from_u64(seed), c)
    });
    let mut sessions: HashMap<u64, SessionSlot> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        depth_sub(&ctx.counters);
        if let Some((rng, c)) = &mut chaos {
            if c.shard_kill_per_mille > 0
                && !matches!(msg, ExecMsg::Crash)
                && rng.gen_range(0u32..1000) < c.shard_kill_per_mille
            {
                // The executor dies mid-stream, dropping its queue and
                // every pending reply sender; the supervisor respawns it
                // and sessions rebuild from their journals on demand.
                return;
            }
        }
        match msg {
            ExecMsg::Crash => return,
            ExecMsg::Hello { session, reply } => {
                let next = match open_session(&mut sessions, session, &ctx) {
                    SessionSlot::Live(state) => state.replay.next_seq(),
                    SessionSlot::Poisoned { next_seq, .. } => *next_seq,
                };
                let _ = reply.send(next);
            }
            ExecMsg::Seq {
                session,
                seq,
                calls,
                batch,
                reply,
            } => {
                let inject = match &mut chaos {
                    Some((rng, c)) if c.panic_per_mille > 0 => {
                        rng.gen_range(0u32..1000) < c.panic_per_mille
                    }
                    _ => false,
                };
                let bytes = serve_seq(&mut sessions, session, seq, &calls, batch, inject, &ctx);
                let _ = reply.send(bytes);
            }
            ExecMsg::Release {
                session,
                component,
                key,
            } => {
                if let Some(SessionSlot::Live(state)) = sessions.get_mut(&session) {
                    state.server.release(component, key);
                    // Journaled so replay frees exactly what the live
                    // session freed.
                    commit_op(&ctx, session, state, JournalOp::Release { component, key });
                }
            }
        }
    }
}

/// Serves one sequenced unit: replay-cache fast paths first, then fresh
/// execution under panic isolation with a single rebuild-and-retry.
fn serve_seq(
    sessions: &mut HashMap<u64, SessionSlot>,
    session: u64,
    seq: u64,
    calls: &Arc<Vec<PendingCall>>,
    batch: bool,
    inject_panic: bool,
    ctx: &ShardContext,
) -> Vec<u8> {
    match open_session(sessions, session, ctx) {
        SessionSlot::Poisoned { reason, .. } => {
            return encode_error(format!("session poisoned: {reason}"));
        }
        SessionSlot::Live(state) => match state.replay.check(seq) {
            SeqCheck::Fresh => {}
            SeqCheck::Replay(cached) => {
                ctx.stats.replays.fetch_add(1, Ordering::Relaxed);
                return cached.clone();
            }
            SeqCheck::Gap { expected } => {
                return encode_error(format!("sequence gap: got {seq}, expected {expected}"));
            }
        },
    }
    // Fresh: execute under `catch_unwind`. A first panic (injected or
    // genuine) leaves torn hidden state behind, so the session is rebuilt
    // from its journal and the unit retried once; a second panic —
    // deterministic fragments fail deterministically — poisons the
    // session. Only this session is affected either way.
    let mut attempt = 0u32;
    loop {
        let Some(SessionSlot::Live(state)) = sessions.get_mut(&session) else {
            unreachable!("session opened live above");
        };
        let inject = inject_panic && attempt == 0;
        let t0 = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_unit(&mut state.server, calls, batch, inject)
        }));
        ctx.counters
            .exec_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        match outcome {
            Ok((resp, served, cost)) => {
                ctx.stats.calls.fetch_add(served, Ordering::Relaxed);
                ctx.counters.calls.fetch_add(served, Ordering::Relaxed);
                ctx.counters.fragments.fetch_add(served, Ordering::Relaxed);
                ctx.counters.cost.fetch_add(cost, Ordering::Relaxed);
                let mut buf = Vec::new();
                resp.encode_into(&mut buf);
                let evicted = state.replay.store(seq, buf.clone());
                ctx.stats
                    .replay_evictions
                    .fetch_add(evicted, Ordering::Relaxed);
                // The commit point: the journal sees the unit before the
                // reply leaves the shard (DESIGN.md §12), so recovery is
                // always at or one behind what the client observed.
                commit_op(
                    ctx,
                    session,
                    state,
                    JournalOp::Seq {
                        seq,
                        calls: Arc::clone(calls),
                        batch,
                    },
                );
                return buf;
            }
            Err(payload) => {
                ctx.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
                let reason = panic_reason(payload.as_ref());
                if attempt == 0 {
                    if let Some(rebuilt) = rebuild_session(session, ctx) {
                        sessions.insert(session, SessionSlot::Live(Box::new(rebuilt)));
                        attempt = 1;
                        continue;
                    }
                }
                let next_seq = ctx
                    .journal
                    .lock()
                    .expect("journal lock")
                    .get(&session)
                    .map_or(seq, |j| j.last_seq() + 1);
                let reason = format!("fragment panicked: {reason}");
                let msg = format!("session poisoned: {reason}");
                sessions.insert(session, SessionSlot::Poisoned { reason, next_seq });
                return encode_error(msg);
            }
        }
    }
}

/// Keeps the *scheduled* panics out of stderr: with a panic-injection
/// rate configured, every injected unwind would otherwise print a full
/// default-hook report. The filter is payload-exact, so genuine panics —
/// the ones `catch_unwind` exists for — still report normally.
fn silence_injected_panics() {
    static SILENCE: std::sync::Once = std::sync::Once::new();
    SILENCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("injected mid-fragment panic"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Runs one unit, optionally dying half-way through it first (the
/// injected mid-fragment panic fault): a prefix of the unit executes and
/// mutates hidden state, then the thread panics — recovery must rebuild,
/// not resume.
fn run_unit(
    server: &mut SecureServer,
    calls: &[PendingCall],
    batch: bool,
    inject_panic: bool,
) -> (Response, u64, u64) {
    if inject_panic {
        let torn = calls.len().div_ceil(2).max(1);
        for c in &calls[..torn] {
            let _ = server.call(c.component, c.key, c.label, &c.args);
        }
        panic!("injected mid-fragment panic (crash schedule)");
    }
    execute(server, calls, batch)
}

/// Best-effort human-readable panic payload.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn encode_error(msg: String) -> Vec<u8> {
    let mut buf = Vec::new();
    Response::Error(msg).encode_into(&mut buf);
    buf
}

/// Appends a committed op to the session's in-memory ring and (best
/// effort) its disk journal. Called at the commit point, before replying.
fn commit_op(ctx: &ShardContext, session: u64, state: &mut SessionState, op: JournalOp) {
    ctx.journal
        .lock()
        .expect("journal lock")
        .entry(session)
        .or_insert_with(|| SessionJournal::new(ctx.journal_limit))
        .append(op.clone());
    if let Some(disk) = &mut state.disk {
        // Best-effort: a failing disk leaves the in-memory ring as the
        // recovery source; the next restart simply recovers less.
        let _ = disk.append(&op);
    }
}

/// Looks a session up, creating it on first contact. A session this
/// executor has never seen but whose journal exists — in the shared ring
/// map (executor respawn) or on disk (process restart) — is rebuilt by
/// replay instead; an incomplete journal poisons it.
fn open_session<'a>(
    sessions: &'a mut HashMap<u64, SessionSlot>,
    session: u64,
    ctx: &ShardContext,
) -> &'a mut SessionSlot {
    sessions.entry(session).or_insert_with(|| {
        let known = ctx
            .journal
            .lock()
            .expect("journal lock")
            .contains_key(&session)
            || ctx
                .journal_dir
                .as_deref()
                .is_some_and(|d| journal_path(d, session).exists());
        if known {
            match rebuild_session(session, ctx) {
                Some(state) => SessionSlot::Live(Box::new(state)),
                None => {
                    let next_seq = ctx
                        .journal
                        .lock()
                        .expect("journal lock")
                        .get(&session)
                        .map_or(1, |j| j.last_seq() + 1);
                    SessionSlot::Poisoned {
                        reason: "journal incomplete: ring overflowed before recovery".into(),
                        next_seq,
                    }
                }
            }
        } else {
            ctx.stats.sessions.fetch_add(1, Ordering::Relaxed);
            ctx.counters.sessions.fetch_add(1, Ordering::Relaxed);
            ctx.journal
                .lock()
                .expect("journal lock")
                .insert(session, SessionJournal::new(ctx.journal_limit));
            SessionSlot::Live(Box::new(fresh_state(session, ctx)))
        }
    })
}

/// A brand-new (or about-to-be-replayed-into) session state. Sessions
/// share the shard's compile-once cache: the shard thread exclusively
/// owns its sessions, but compiled code is plain `Send + Sync` data, so
/// sharing it is safe and each fragment lowers at most once per shard.
fn fresh_state(session: u64, ctx: &ShardContext) -> SessionState {
    let server = match &ctx.counters.vm {
        Some(cache) => SecureServer::new(ctx.hidden.clone()).with_vm_cache(Arc::clone(cache)),
        None => SecureServer::new(ctx.hidden.clone()).with_fragment_vm(false),
    };
    let server = match &ctx.counters.memo {
        Some(memo) => server.with_memo_table(Arc::clone(memo)),
        None => server.with_fragment_memo(false),
    };
    let disk = ctx
        .journal_dir
        .as_deref()
        .and_then(|d| DiskJournal::open(d, session).ok());
    SessionState {
        server,
        replay: ReplayCache::with_capacity(ctx.replay_capacity),
        disk,
    }
}

/// Rebuilds a session's hidden state by replaying its journal of
/// committed units — the fragments are deterministic, so the result is
/// bit-identical to the lost state. Returns `None` when no journal can
/// be found or the ring is no longer a complete history (the caller then
/// poisons the session rather than rebuild wrong state).
fn rebuild_session(session: u64, ctx: &ShardContext) -> Option<SessionState> {
    let t0 = Instant::now();
    let journal = {
        let mut map = ctx.journal.lock().expect("journal lock");
        match map.get(&session) {
            Some(j) => j.clone(),
            None => {
                let loaded = ctx
                    .journal_dir
                    .as_deref()
                    .and_then(|d| load_disk_journal(d, session, ctx.journal_limit))?;
                map.insert(session, loaded.clone());
                loaded
            }
        }
    };
    if !journal.is_complete() {
        return None;
    }
    let mut state = fresh_state(session, ctx);
    for op in journal.ops() {
        match op {
            JournalOp::Seq { seq, calls, batch } => {
                // Replay is not new logical work: committed units were
                // counted when first served, so only hidden state and the
                // replay window are rebuilt here.
                let (resp, _served, _cost) = execute(&mut state.server, calls, *batch);
                let mut buf = Vec::new();
                resp.encode_into(&mut buf);
                let _ = state.replay.store(*seq, buf);
            }
            JournalOp::Release { component, key } => state.server.release(*component, *key),
        }
    }
    ctx.stats.journal_replays.fetch_add(1, Ordering::Relaxed);
    ctx.stats
        .recovery_latency
        .lock()
        .expect("recovery latency lock")
        .record(t0.elapsed().as_micros() as u64);
    Some(state)
}

/// Executes one sequenced unit against a session's secure server,
/// returning the response, the number of logical calls served, and the
/// virtual cost they spent.
fn execute(server: &mut SecureServer, calls: &[PendingCall], batch: bool) -> (Response, u64, u64) {
    if batch {
        match server.call_batch(calls) {
            Ok(outs) => {
                let n = outs.len() as u64;
                let cost: u64 = outs.iter().map(|out| out.cost).sum();
                (
                    Response::Batch(
                        outs.into_iter()
                            .map(|out| CallReply {
                                value: out.value,
                                server_cost: out.cost,
                            })
                            .collect(),
                    ),
                    n,
                    cost,
                )
            }
            Err(e) => (Response::Error(e.to_string()), 0, 0),
        }
    } else {
        let c = &calls[0];
        match server.call(c.component, c.key, c.label, &c.args) {
            Ok(out) => (
                Response::Reply {
                    value: out.value,
                    server_cost: out.cost,
                },
                1,
                out.cost,
            ),
            Err(e) => (Response::Error(e.to_string()), 0, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_hash_to_stable_shards() {
        for session in 0..100u64 {
            assert_eq!(shard_of(session, 1), 0);
            let s4 = shard_of(session, 4);
            assert!(s4 < 4);
            assert_eq!(s4, shard_of(session, 4), "routing must be stable");
        }
        // All shards are reachable.
        let hit: std::collections::HashSet<usize> = (0..100u64).map(|s| shard_of(s, 4)).collect();
        assert_eq!(hit.len(), 4);
    }

    #[test]
    fn exec_messages_are_send() {
        // The whole sharding design rests on this: requests and replies
        // cross threads, hidden values never do.
        fn assert_send<T: Send>() {}
        assert_send::<ExecMsg>();
        assert_send::<Vec<u8>>();
    }
}
