//! The adversary's wiretap.
//!
//! The paper's threat model: "an adversary … must study the interactions
//! between the open and hidden components and attempt to construct the
//! missing hidden code", observing "the values being exchanged by `Of` and
//! `Hf` over a period of time". [`TraceChannel`] wraps any [`Channel`] and
//! records exactly that observable information — the label, arguments and
//! returned value of every call, in order — and nothing more (in
//! particular, no hidden state). The `hps-attack` crate consumes the
//! resulting [`Trace`].
//!
//! **Retries are invisible here.** The reliability layer
//! ([`crate::fault::FaultyChannel`], [`crate::tcp::TcpChannel`] in
//! reliable mode) lives *below* this wiretap: a retransmit re-delivers the
//! same logical call and a replay re-delivers its cached response, so a
//! faulty run produces exactly the event sequence of the fault-free run.
//! The adversary's view — and the paper's interaction counts (Table 5) —
//! are invariant under transport faults; turbulence shows up only in
//! [`Channel::transport_stats`].

use crate::channel::{CallReply, Channel, PendingCall, TransportStats};
use crate::error::RuntimeError;
use hps_ir::{ComponentId, FragLabel, Value};
use hps_telemetry::{Event, RecorderHandle};

/// One observed logical call (a batched round trip contributes one event
/// per call it carries — the payload is fully visible on the wire either
/// way, so transport coalescing never shrinks the adversary's view).
#[derive(Clone, PartialEq, Debug)]
pub struct TraceEvent {
    /// Position in the global interaction order.
    pub seq: u64,
    /// Addressed component.
    pub component: ComponentId,
    /// Activation / instance key (visible on the wire).
    pub key: u64,
    /// Fragment label.
    pub label: FragLabel,
    /// Scalars sent open → hidden.
    pub args: Vec<Value>,
    /// Scalar returned hidden → open.
    pub ret: Value,
}

/// Everything an adversary on the open machine can record.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Trace {
    /// Observed round trips, in order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Events addressed to one `(component, label)` call site, preserving
    /// order.
    pub fn events_for(&self, component: ComponentId, label: FragLabel) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.component == component && e.label == label)
            .collect()
    }

    /// Distinct `(component, label)` pairs observed.
    pub fn call_sites(&self) -> Vec<(ComponentId, FragLabel)> {
        let mut out: Vec<(ComponentId, FragLabel)> =
            self.events.iter().map(|e| (e.component, e.label)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Events belonging to one activation/instance of one component, in
    /// order — the adversary groups observations this way to correlate
    /// values sent earlier with values returned later.
    pub fn session(&self, component: ComponentId, key: u64) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.component == component && e.key == key)
            .collect()
    }

    /// Distinct keys observed for a component.
    pub fn keys_of(&self, component: ComponentId) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .events
            .iter()
            .filter(|e| e.component == component)
            .map(|e| e.key)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A [`Channel`] wrapper that records every interaction.
pub struct TraceChannel<'a> {
    inner: &'a mut dyn Channel,
    trace: Trace,
    recorder: RecorderHandle,
}

impl<'a> TraceChannel<'a> {
    /// Wraps a channel.
    pub fn new(inner: &'a mut dyn Channel) -> TraceChannel<'a> {
        TraceChannel {
            inner,
            trace: Trace::default(),
            recorder: RecorderHandle::none(),
        }
    }

    /// Attaches a telemetry recorder that counts recorded wiretap events
    /// (builder style). Recording never changes the trace itself.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> TraceChannel<'a> {
        self.recorder = recorder;
        self
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the wrapper, returning the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl Channel for TraceChannel<'_> {
    fn call(
        &mut self,
        component: ComponentId,
        key: u64,
        label: FragLabel,
        args: &[Value],
    ) -> Result<CallReply, RuntimeError> {
        let reply = self.inner.call(component, key, label, args)?;
        self.trace.events.push(TraceEvent {
            seq: self.trace.events.len() as u64,
            component,
            key,
            label,
            args: args.to_vec(),
            ret: reply.value,
        });
        self.recorder.record(Event::TraceEvent);
        Ok(reply)
    }

    fn call_batch(&mut self, calls: &[PendingCall]) -> Result<Vec<CallReply>, RuntimeError> {
        let replies = self.inner.call_batch(calls)?;
        // One event per logical call: the batch frame spells out every
        // component/key/label/args tuple and every returned value.
        for (c, reply) in calls.iter().zip(&replies) {
            self.trace.events.push(TraceEvent {
                seq: self.trace.events.len() as u64,
                component: c.component,
                key: c.key,
                label: c.label,
                args: c.args.clone(),
                ret: reply.value,
            });
            self.recorder.record(Event::TraceEvent);
        }
        Ok(replies)
    }

    fn release(&mut self, component: ComponentId, key: u64) -> Result<(), RuntimeError> {
        self.inner.release(component, key)
    }

    fn interactions(&self) -> u64 {
        self.inner.interactions()
    }

    fn rtt_cost(&self) -> u64 {
        self.inner.rtt_cost()
    }

    fn transport_stats(&self) -> TransportStats {
        self.inner.transport_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeChannel(u64);

    impl Channel for FakeChannel {
        fn call(
            &mut self,
            _c: ComponentId,
            _k: u64,
            _l: FragLabel,
            args: &[Value],
        ) -> Result<CallReply, RuntimeError> {
            self.0 += 1;
            let v = args.first().copied().unwrap_or(Value::Int(0));
            Ok(CallReply {
                value: v,
                server_cost: 1,
            })
        }

        fn release(&mut self, _c: ComponentId, _k: u64) -> Result<(), RuntimeError> {
            Ok(())
        }

        fn interactions(&self) -> u64 {
            self.0
        }

        fn rtt_cost(&self) -> u64 {
            3
        }
    }

    #[test]
    fn records_calls_in_order() {
        let mut inner = FakeChannel(0);
        let mut tc = TraceChannel::new(&mut inner);
        let c0 = ComponentId::new(0);
        let l0 = FragLabel::new(0);
        let l1 = FragLabel::new(1);
        tc.call(c0, 1, l0, &[Value::Int(5)]).unwrap();
        tc.call(c0, 1, l1, &[]).unwrap();
        tc.call(c0, 2, l0, &[Value::Int(7)]).unwrap();
        let trace = tc.into_trace();
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.events[0].ret, Value::Int(5));
        assert_eq!(trace.events_for(c0, l0).len(), 2);
        assert_eq!(trace.call_sites(), vec![(c0, l0), (c0, l1)]);
        assert_eq!(trace.keys_of(c0), vec![1, 2]);
        assert_eq!(trace.session(c0, 1).len(), 2);
    }

    #[test]
    fn batches_record_every_logical_call() {
        let mut inner = FakeChannel(0);
        let mut tc = TraceChannel::new(&mut inner);
        let c0 = ComponentId::new(0);
        let calls = vec![
            PendingCall {
                component: c0,
                key: 1,
                label: FragLabel::new(0),
                args: vec![Value::Int(5)],
            },
            PendingCall {
                component: c0,
                key: 2,
                label: FragLabel::new(1),
                args: vec![],
            },
        ];
        tc.call_batch(&calls).unwrap();
        let trace = tc.into_trace();
        assert_eq!(trace.events.len(), 2, "one event per logical call");
        assert_eq!(trace.events[0].ret, Value::Int(5));
        assert_eq!(trace.events[1].seq, 1);
        assert_eq!(trace.keys_of(c0), vec![1, 2]);
    }

    #[test]
    fn faulty_transport_leaves_the_trace_invariant() {
        use crate::fault::{FaultKind, FaultPlan, FaultyChannel};
        // The same workload through a clean channel and through a channel
        // under heavy injected faults: the adversary's recording must be
        // byte-for-byte identical, with turbulence visible only in the
        // transport stats.
        let workload = |chan: &mut dyn Channel| -> Trace {
            let mut tc = TraceChannel::new(chan);
            let c0 = ComponentId::new(0);
            for n in 0..12 {
                tc.call(c0, n % 3, FragLabel::new(0), &[Value::Int(n as i64)])
                    .unwrap();
            }
            tc.into_trace()
        };
        let mut clean = FakeChannel(0);
        let clean_trace = workload(&mut clean);
        let mut faulty = FaultyChannel::new(
            FakeChannel(0),
            FaultPlan::new(0xbad5eed, &FaultKind::ALL, 300),
        );
        let faulty_trace = workload(&mut faulty);
        assert_eq!(clean_trace, faulty_trace);
        assert_eq!(faulty.inner().0, clean.0, "same logical calls delivered");
        assert!(faulty.transport_stats().faults > 0, "faults must fire");
    }

    #[test]
    fn passthrough_preserves_costs() {
        let mut inner = FakeChannel(0);
        let mut tc = TraceChannel::new(&mut inner);
        assert_eq!(tc.rtt_cost(), 3);
        tc.call(ComponentId::new(0), 1, FragLabel::new(0), &[])
            .unwrap();
        assert_eq!(tc.interactions(), 1);
        tc.release(ComponentId::new(0), 1).unwrap();
    }
}
