//! Deterministic virtual-time cost model.
//!
//! The paper's Table 5 reports wall-clock runtimes before and after
//! splitting on two LAN-connected machines. To make that experiment
//! reproducible and parameterizable we charge every executed operation a
//! fixed number of abstract *cost units* and every open↔hidden round trip a
//! configurable latency; dividing by [`CostModel::units_per_second`] yields
//! virtual seconds. Relative overheads — the quantity the paper actually
//! compares — are invariant to the absolute scale chosen here.

/// Per-operation costs in abstract units.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CostModel {
    /// Plain assignment / variable read overhead.
    pub assign: u64,
    /// Arithmetic / relational / logical binary operation.
    pub binop: u64,
    /// Unary operation.
    pub unop: u64,
    /// Cheap builtin (`abs`, `min`, `max`, `len`, casts).
    pub builtin: u64,
    /// Transcendental builtin (`exp`, `log`, `sqrt`, `floor`).
    pub transcendental: u64,
    /// Array element access (bounds check + load/store).
    pub index: u64,
    /// Object field access.
    pub field: u64,
    /// Function call overhead (frame setup).
    pub call: u64,
    /// Branch / loop-condition evaluation overhead.
    pub branch: u64,
    /// `print` statement.
    pub print: u64,
    /// Array allocation, per element.
    pub alloc_per_elem: u64,
    /// Object allocation.
    pub alloc_object: u64,
    /// Marshalling cost per scalar argument of a hidden call (both sides).
    pub marshal_per_arg: u64,
    /// Virtual units per second, for converting to seconds.
    pub units_per_second: u64,
}

impl CostModel {
    /// A model loosely calibrated so one unit ≈ one simple interpreted
    /// operation on the paper-era hardware (hundreds of ns), i.e.
    /// 10 million units per second.
    pub fn new() -> CostModel {
        CostModel {
            assign: 1,
            binop: 1,
            unop: 1,
            builtin: 2,
            transcendental: 20,
            index: 2,
            field: 2,
            call: 10,
            branch: 1,
            print: 20,
            alloc_per_elem: 1,
            alloc_object: 10,
            marshal_per_arg: 5,
            units_per_second: 10_000_000,
        }
    }

    /// The charge for one builtin call — [`CostModel::transcendental`] for
    /// `exp`/`log`/`sqrt`/`floor`, [`CostModel::builtin`] otherwise. Shared
    /// by the fragment tree-walk and the bytecode lowerer so both account
    /// identically.
    pub fn builtin_cost(&self, b: hps_ir::Builtin) -> u64 {
        if b.is_transcendental() {
            self.transcendental
        } else {
            self.builtin
        }
    }

    /// Converts a unit count to virtual seconds.
    pub fn to_seconds(&self, units: u64) -> f64 {
        units as f64 / self.units_per_second as f64
    }

    /// A LAN-like round-trip latency in units (~0.3 ms at the default
    /// scale), matching the paper's two-machines-on-a-LAN setup.
    pub fn lan_round_trip(&self) -> u64 {
        self.units_per_second / 3_333
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_conversion() {
        let m = CostModel::new();
        assert!((m.to_seconds(m.units_per_second) - 1.0).abs() < 1e-12);
        assert_eq!(m.to_seconds(0), 0.0);
    }

    #[test]
    fn lan_rtt_is_sub_millisecond_scale() {
        let m = CostModel::new();
        let rtt_s = m.to_seconds(m.lan_round_trip());
        assert!(rtt_s > 1e-5 && rtt_s < 1e-3, "rtt = {rtt_s}");
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(CostModel::default(), CostModel::new());
    }
}
