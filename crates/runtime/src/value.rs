//! Runtime values.
//!
//! Aggregates use shared mutable interiors (`Rc<RefCell<…>>`), so
//! [`RtValue`] is deliberately **not `Send`**: making it thread-safe would
//! put a lock on every array/field access in the interpreter's hot path.
//! Threaded layers respect this by confining values instead of sharing
//! them — the [`crate::shard`] pool hashes each session to one executor
//! thread that exclusively owns its hidden state for the session's whole
//! life, and only scalar [`hps_ir::Value`]s and encoded frames cross
//! threads.

use hps_ir::{ClassId, Ty, Value};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Shared mutable array storage.
pub type ArrayRef = Rc<RefCell<Vec<RtValue>>>;

/// Shared mutable object storage.
pub type ObjRef = Rc<RefCell<ObjData>>;

/// The payload of an object value.
#[derive(Clone, PartialEq, Debug)]
pub struct ObjData {
    /// The object's class.
    pub class: ClassId,
    /// Program-wide unique instance id — the paper's "instance id" used to
    /// pair open instances with their hidden counterparts.
    pub instance_id: u64,
    /// Field values, indexed by `FieldId`.
    pub fields: Vec<RtValue>,
}

/// A value during execution.
#[derive(Clone, Debug)]
pub enum RtValue {
    /// An uninitialized aggregate local (reading it is a runtime error).
    Uninit,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Array reference (shared, mutable).
    Array(ArrayRef),
    /// Object reference (shared, mutable).
    Object(ObjRef),
}

impl RtValue {
    /// The default value for a declared type: zero for scalars,
    /// [`RtValue::Uninit`] for aggregates.
    pub fn default_of(ty: &Ty) -> RtValue {
        match ty {
            Ty::Int => RtValue::Int(0),
            Ty::Float => RtValue::Float(0.0),
            Ty::Bool => RtValue::Bool(false),
            _ => RtValue::Uninit,
        }
    }

    /// Builds a fresh array of `len` elements, zero-initialized for `elem`.
    pub fn new_array(elem: &Ty, len: usize) -> RtValue {
        RtValue::Array(Rc::new(RefCell::new(vec![RtValue::default_of(elem); len])))
    }

    /// Builds an `int[]` array value from a slice (convenient for feeding
    /// workloads to `main`).
    pub fn from_ints(data: &[i64]) -> RtValue {
        RtValue::Array(Rc::new(RefCell::new(
            data.iter().map(|&v| RtValue::Int(v)).collect(),
        )))
    }

    /// Builds a `float[]` array value from a slice.
    pub fn from_floats(data: &[f64]) -> RtValue {
        RtValue::Array(Rc::new(RefCell::new(
            data.iter().map(|&v| RtValue::Float(v)).collect(),
        )))
    }

    /// Converts a scalar IR constant.
    pub fn from_const(v: Value) -> RtValue {
        match v {
            Value::Int(i) => RtValue::Int(i),
            Value::Float(f) => RtValue::Float(f),
            Value::Bool(b) => RtValue::Bool(b),
        }
    }

    /// Converts back to a scalar IR constant, if this is a scalar.
    pub fn to_const(&self) -> Option<Value> {
        match self {
            RtValue::Int(i) => Some(Value::Int(*i)),
            RtValue::Float(f) => Some(Value::Float(*f)),
            RtValue::Bool(b) => Some(Value::Bool(*b)),
            _ => None,
        }
    }

    /// Recursively copies the value: arrays and objects get fresh storage.
    ///
    /// Plain `clone` shares aggregate storage (reference semantics, like
    /// the language itself); use this when two runs must not observe each
    /// other's mutations — e.g. feeding the same workload to the original
    /// and the split program.
    pub fn deep_clone(&self) -> RtValue {
        match self {
            RtValue::Array(a) => RtValue::Array(Rc::new(RefCell::new(
                a.borrow().iter().map(RtValue::deep_clone).collect(),
            ))),
            RtValue::Object(o) => {
                let o = o.borrow();
                RtValue::Object(Rc::new(RefCell::new(ObjData {
                    class: o.class,
                    instance_id: o.instance_id,
                    fields: o.fields.iter().map(RtValue::deep_clone).collect(),
                })))
            }
            other => other.clone(),
        }
    }

    /// Returns `true` for `Int`, `Float` and `Bool`.
    pub fn is_scalar(&self) -> bool {
        matches!(self, RtValue::Int(_) | RtValue::Float(_) | RtValue::Bool(_))
    }

    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            RtValue::Uninit => "uninitialized",
            RtValue::Int(_) => "int",
            RtValue::Float(_) => "float",
            RtValue::Bool(_) => "bool",
            RtValue::Array(_) => "array",
            RtValue::Object(_) => "object",
        }
    }
}

impl PartialEq for RtValue {
    /// Structural equality; arrays and objects compare by identity (same
    /// reference).
    fn eq(&self, other: &RtValue) -> bool {
        match (self, other) {
            (RtValue::Uninit, RtValue::Uninit) => true,
            (RtValue::Int(a), RtValue::Int(b)) => a == b,
            (RtValue::Float(a), RtValue::Float(b)) => a == b,
            (RtValue::Bool(a), RtValue::Bool(b)) => a == b,
            (RtValue::Array(a), RtValue::Array(b)) => Rc::ptr_eq(a, b),
            (RtValue::Object(a), RtValue::Object(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl fmt::Display for RtValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtValue::Uninit => write!(f, "<uninit>"),
            RtValue::Int(v) => write!(f, "{v}"),
            RtValue::Float(v) => write!(f, "{}", Value::Float(*v)),
            RtValue::Bool(v) => write!(f, "{v}"),
            RtValue::Array(a) => write!(f, "<array[{}]>", a.borrow().len()),
            RtValue::Object(o) => write!(f, "<object #{}>", o.borrow().instance_id),
        }
    }
}

impl From<i64> for RtValue {
    fn from(v: i64) -> Self {
        RtValue::Int(v)
    }
}

impl From<f64> for RtValue {
    fn from(v: f64) -> Self {
        RtValue::Float(v)
    }
}

impl From<bool> for RtValue {
    fn from(v: bool) -> Self {
        RtValue::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_per_type() {
        assert_eq!(RtValue::default_of(&Ty::Int), RtValue::Int(0));
        assert_eq!(RtValue::default_of(&Ty::Bool), RtValue::Bool(false));
        assert_eq!(RtValue::default_of(&Ty::Int.array_of()), RtValue::Uninit);
    }

    #[test]
    fn arrays_compare_by_identity() {
        let a = RtValue::from_ints(&[1, 2]);
        let b = RtValue::from_ints(&[1, 2]);
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
    }

    #[test]
    fn const_round_trip() {
        for v in [Value::Int(4), Value::Float(1.5), Value::Bool(true)] {
            assert_eq!(RtValue::from_const(v).to_const(), Some(v));
        }
        assert_eq!(RtValue::Uninit.to_const(), None);
    }

    #[test]
    fn display_matches_ir_formatting() {
        assert_eq!(RtValue::Float(2.0).to_string(), "2.0");
        assert_eq!(RtValue::Float(2.5).to_string(), "2.5");
        assert_eq!(RtValue::Int(-3).to_string(), "-3");
        assert_eq!(RtValue::Bool(true).to_string(), "true");
    }

    #[test]
    fn deep_clone_unshares_storage() {
        let a = RtValue::from_ints(&[1, 2, 3]);
        let b = a.deep_clone();
        if let (RtValue::Array(x), RtValue::Array(y)) = (&a, &b) {
            x.borrow_mut()[0] = RtValue::Int(99);
            assert_eq!(y.borrow()[0], RtValue::Int(1));
        } else {
            panic!("expected arrays");
        }
    }

    #[test]
    fn new_array_zeroed() {
        let a = RtValue::new_array(&Ty::Float, 3);
        if let RtValue::Array(arr) = &a {
            assert_eq!(arr.borrow().len(), 3);
            assert_eq!(arr.borrow()[0], RtValue::Float(0.0));
        } else {
            panic!("expected array");
        }
    }
}
