//! The open-side interpreter.
//!
//! A tree-walking evaluator for `hps_ir::Program` with:
//!
//! * deterministic virtual-time cost accounting (see [`CostModel`]),
//! * step and call-depth limits so runaway programs fail cleanly,
//! * split-program support: functions carrying
//!   [`split_component`](hps_ir::Function::split_component) allocate an
//!   *activation id* on entry (the paper's instance id, which keeps
//!   recursive activations apart), route
//!   [`StmtKind::HiddenCall`] statements through an attached [`Channel`],
//!   and release the secure-side state on return. Methods of split classes
//!   route calls by the receiver object's instance id instead.

use crate::channel::{Channel, InProcessChannel, PendingCall, TransportStats};
use crate::cost::CostModel;
use crate::error::RuntimeError;
use crate::fault::{FaultPlan, FaultyChannel};
use crate::server::SecureServer;
use crate::value::{ObjData, RtValue};
use hps_ir::{
    Block, Builtin, ClassId, ComponentId, ComponentKind, Expr, FuncId, HiddenProgram, Place,
    Program, StmtKind, Ty,
};
use hps_telemetry::{Event, MetricsRecorder, MetricsSnapshot, RecorderHandle, Snapshot};
use std::cell::RefCell;
use std::rc::Rc;

/// Execution limits and cost model.
///
/// Construct with [`ExecConfig::new`] / [`ExecConfig::default`] and adjust
/// through the builder setters; the struct is `#[non_exhaustive]` so new
/// knobs can be added without breaking downstream construction.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ExecConfig {
    /// Maximum statements/iterations executed before aborting.
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// The cost model used for virtual timing.
    pub cost_model: CostModel,
    /// Honour `deferred` marks on [`StmtKind::HiddenCall`]: buffer marked
    /// calls and ship them together with the next demanded call (or flush
    /// point) in one round trip. Off by default so unbatched interaction
    /// counts stay reproducible.
    pub batching: bool,
    /// Execute fragments on the secure side's bytecode VM
    /// ([`crate::bytecode`]) instead of the tree-walk. On by default
    /// (`HPS_FRAGMENT_VM=0` flips the default); results, costs and errors
    /// are identical either way — the flag exists for differential testing
    /// and `hps run/serve --no-vm`.
    pub fragment_vm: bool,
    /// Serve repeated pure-fragment calls from the content-addressed memo
    /// table ([`crate::memo`]) instead of re-executing. On by default
    /// (`HPS_FRAGMENT_MEMO=0` flips the default); hits replay the cached
    /// cost and events, so results, costs, traces and interaction counts
    /// are identical either way — `hps run/serve --no-memo` disables.
    pub fragment_memo: bool,
}

impl ExecConfig {
    /// Defaults: 500 M steps, depth 128, default cost model, no batching.
    ///
    /// The depth limit is conservative because each interpreted call uses a
    /// few kilobytes of host stack; 128 fits comfortably in a 2 MiB test
    /// thread stack.
    pub fn new() -> ExecConfig {
        ExecConfig {
            max_steps: 500_000_000,
            max_call_depth: 128,
            cost_model: CostModel::new(),
            batching: false,
            fragment_vm: crate::bytecode::vm_enabled_by_default(),
            fragment_memo: crate::memo::memo_enabled_by_default(),
        }
    }

    /// Enables or disables the fragment bytecode VM (builder style).
    pub fn with_fragment_vm(mut self, fragment_vm: bool) -> ExecConfig {
        self.fragment_vm = fragment_vm;
        self
    }

    /// Enables or disables pure-fragment memoization (builder style).
    pub fn with_fragment_memo(mut self, fragment_memo: bool) -> ExecConfig {
        self.fragment_memo = fragment_memo;
        self
    }

    /// Enables or disables round-trip batching (builder style).
    pub fn with_batching(mut self, batching: bool) -> ExecConfig {
        self.batching = batching;
        self
    }

    /// Overrides the step limit (builder style).
    pub fn with_max_steps(mut self, max_steps: u64) -> ExecConfig {
        self.max_steps = max_steps;
        self
    }

    /// Overrides the call-depth limit (builder style).
    pub fn with_max_call_depth(mut self, max_call_depth: usize) -> ExecConfig {
        self.max_call_depth = max_call_depth;
        self
    }

    /// Replaces the cost model (builder style).
    pub fn with_cost_model(mut self, cost_model: CostModel) -> ExecConfig {
        self.cost_model = cost_model;
        self
    }
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig::new()
    }
}

/// The result of a successful run.
#[derive(Clone, PartialEq, Debug)]
pub struct Outcome {
    /// Value returned by the entry function.
    pub ret: RtValue,
    /// Lines produced by `print` statements, in order.
    pub output: Vec<String>,
    /// Virtual cost units spent on the open side's critical path (includes
    /// channel round trips and secure-side execution for split runs).
    pub cost: u64,
    /// Number of statements executed on the open side.
    pub steps: u64,
}

/// The result of running a split program in process.
#[derive(Clone, PartialEq, Debug)]
pub struct SplitOutcome {
    /// The ordinary outcome (output, return value, cost, steps).
    pub outcome: Outcome,
    /// Open↔hidden round trips (the paper's "Component Interactions").
    pub interactions: u64,
    /// Virtual cost units spent by the secure device.
    pub server_cost: u64,
    /// Reliability counters from the transport (all zero on fault-free
    /// channels). Reported beside — never inside — `interactions`.
    pub transport: crate::channel::TransportStats,
}

/// Component-kind table the *open* side needs to route hidden calls (which
/// id spaces key the state: per-activation for split functions,
/// per-object-instance for split classes). Contains no hidden code.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SplitMeta {
    kinds: Vec<MetaKind>,
    class_component: Vec<Option<ComponentId>>,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum MetaKind {
    Function,
    Class,
    Global,
}

impl SplitMeta {
    /// Derives the routing table from the open program and the hidden
    /// program's component list.
    pub fn derive(open: &Program, hidden: &HiddenProgram) -> SplitMeta {
        let mut kinds = Vec::new();
        let mut class_component = vec![None; open.classes.len()];
        for comp in &hidden.components {
            match &comp.kind {
                ComponentKind::Function { .. } => kinds.push(MetaKind::Function),
                ComponentKind::Class { class_name } => {
                    kinds.push(MetaKind::Class);
                    if let Some(cid) = open.class_by_name(class_name) {
                        class_component[cid.index()] = Some(comp.id);
                    }
                }
                ComponentKind::Global { .. } => kinds.push(MetaKind::Global),
            }
        }
        SplitMeta {
            kinds,
            class_component,
        }
    }

    fn kind_of(&self, c: ComponentId) -> Option<MetaKind> {
        self.kinds.get(c.index()).copied()
    }

    /// The hidden component attached to a class, if it was split.
    pub fn component_of_class(&self, class: ClassId) -> Option<ComponentId> {
        self.class_component.get(class.index()).copied().flatten()
    }
}

/// One configured in-process split execution: open program, hidden
/// program, and every knob the `run_split*` family used to take as
/// positional arguments — batching, round-trip latency, fault injection —
/// plus telemetry recording.
///
/// This is the single entry point for running a split program in process;
/// [`run_split`], [`run_split_batched`], [`run_split_with_rtt`] and
/// [`run_split_faulty`] are thin wrappers over it. Use [`Interp`] directly
/// only for custom channels (TCP, tracing).
///
/// # Examples
///
/// ```
/// use hps_runtime::{Executor, MetricsRecorder};
///
/// let program = hps_lang::parse(
///     "fn f(x: int) -> int { var a: int = x * 2; return a; }
///      fn main() { print(f(21)); }",
/// )?;
/// let plan = hps_core::SplitPlan::single(&program, "f", "a")?;
/// let split = hps_core::split_program(&program, &plan)?;
/// let report = Executor::new(&split.open, &split.hidden)
///     .batching(true)
///     .rtt(10)
///     .recorder(MetricsRecorder::new())
///     .run(&[])?;
/// assert_eq!(report.outcome.output, ["42"]);
/// assert!(report.interactions > 0);
/// assert_eq!(
///     report.telemetry.counter("hps_interactions_total"),
///     report.interactions,
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Executor<'p> {
    open: &'p Program,
    hidden: &'p HiddenProgram,
    config: ExecConfig,
    rtt: u64,
    faults: Option<FaultPlan>,
    recorder: Option<Rc<MetricsRecorder>>,
}

impl<'p> Executor<'p> {
    /// An executor with default configuration: no batching, zero
    /// round-trip cost, no faults, no recorder.
    pub fn new(open: &'p Program, hidden: &'p HiddenProgram) -> Executor<'p> {
        Executor {
            open,
            hidden,
            config: ExecConfig::new(),
            rtt: 0,
            faults: None,
            recorder: None,
        }
    }

    /// Replaces the whole execution configuration. Set this *before*
    /// [`Executor::batching`], which edits the stored configuration.
    pub fn config(mut self, config: ExecConfig) -> Executor<'p> {
        self.config = config;
        self
    }

    /// Enables or disables round-trip batching of deferred hidden calls.
    pub fn batching(mut self, batching: bool) -> Executor<'p> {
        self.config.batching = batching;
        self
    }

    /// Sets the virtual round-trip cost charged per interaction.
    pub fn rtt(mut self, rtt: u64) -> Executor<'p> {
        self.rtt = rtt;
        self
    }

    /// Enables or disables the secure side's fragment bytecode VM for this
    /// run (defaults to [`ExecConfig::fragment_vm`]). Either mode yields
    /// byte-identical results, costs, traces and errors.
    pub fn fragment_vm(mut self, enabled: bool) -> Executor<'p> {
        self.config.fragment_vm = enabled;
        self
    }

    /// Enables or disables pure-fragment memoization for this run
    /// (defaults to [`ExecConfig::fragment_memo`]). Either mode yields
    /// byte-identical results, costs, traces and interaction counts; only
    /// the `hps_server_memo_*` counters differ.
    pub fn fragment_memo(mut self, enabled: bool) -> Executor<'p> {
        self.config.fragment_memo = enabled;
        self
    }

    /// Injects transport faults: wraps the channel in a
    /// [`FaultyChannel`] driven by `plan`. Outcome, interaction count and
    /// the server-side call sequence stay identical to a fault-free run;
    /// only [`ExecReport::transport`] (and the reliability telemetry
    /// counters) record the turbulence.
    pub fn faults(mut self, plan: FaultPlan) -> Executor<'p> {
        self.faults = Some(plan);
        self
    }

    /// Attaches a metrics recorder; the events every layer fires during
    /// the run are aggregated into [`ExecReport::telemetry`]. Recording
    /// never changes results, costs or interaction counts. Without a
    /// recorder the telemetry snapshot comes back empty and the hooks
    /// reduce to one branch each.
    pub fn recorder(mut self, recorder: MetricsRecorder) -> Executor<'p> {
        self.recorder = Some(Rc::new(recorder));
        self
    }

    /// Runs `main` of the open program against a fresh in-process
    /// [`SecureServer`] holding the hidden program.
    ///
    /// Each call builds a fresh server (and, with [`Executor::faults`], a
    /// fresh copy of the fault plan, so every run replays the same seeded
    /// schedule); the recorder, if any, accumulates across runs.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] for execution faults on either side, or
    /// a terminal transport error if a fault plan exhausts the retry
    /// budget.
    pub fn run(&self, args: &[RtValue]) -> Result<ExecReport, RuntimeError> {
        let handle = match &self.recorder {
            Some(r) => RecorderHandle::new(r.clone()),
            None => RecorderHandle::none(),
        };
        let server = SecureServer::new(self.hidden.clone())
            .with_cost_model(self.config.cost_model.clone())
            .with_fragment_vm(self.config.fragment_vm)
            .with_fragment_memo(self.config.fragment_memo)
            .with_recorder(handle.clone());
        let inner = InProcessChannel::new(server)
            .with_rtt(self.rtt)
            .with_recorder(handle.clone());
        let meta = SplitMeta::derive(self.open, self.hidden);
        let (outcome, interactions, server_cost, transport) = match self.faults.clone() {
            Some(plan) => {
                let mut channel = FaultyChannel::new(inner, plan).with_recorder(handle.clone());
                let mut interp = Interp::new(self.open, self.config.clone())
                    .with_channel(&mut channel, &meta)
                    .with_recorder(handle);
                let outcome = interp.run("main", args)?;
                drop(interp);
                (
                    outcome,
                    channel.interactions(),
                    channel.inner().server().cost_spent(),
                    channel.transport_stats(),
                )
            }
            None => {
                let mut channel = inner;
                let mut interp = Interp::new(self.open, self.config.clone())
                    .with_channel(&mut channel, &meta)
                    .with_recorder(handle);
                let outcome = interp.run("main", args)?;
                drop(interp);
                (
                    outcome,
                    channel.interactions(),
                    channel.server().cost_spent(),
                    channel.transport_stats(),
                )
            }
        };
        let telemetry = match &self.recorder {
            Some(r) => r.snapshot(),
            None => MetricsSnapshot::new(),
        };
        Ok(ExecReport {
            outcome,
            interactions,
            server_cost,
            transport,
            telemetry,
        })
    }
}

/// Everything one [`Executor::run`] reports: the program's outcome, the
/// paper's interaction/cost measurements, the transport's reliability
/// counters, and (when a recorder was attached) the full metrics snapshot.
#[derive(Clone, PartialEq, Debug)]
pub struct ExecReport {
    /// The ordinary outcome (output, return value, cost, steps).
    pub outcome: Outcome,
    /// Open↔hidden round trips (the paper's "Component Interactions").
    pub interactions: u64,
    /// Virtual cost units spent by the secure device.
    pub server_cost: u64,
    /// Reliability counters from the transport (all zero on fault-free
    /// channels).
    pub transport: TransportStats,
    /// Aggregated telemetry; empty when no recorder was attached.
    pub telemetry: MetricsSnapshot,
}

impl ExecReport {
    /// The run's telemetry as one serializable `hps-telemetry/v1`
    /// document (transport counters beside the metrics).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::new(self.transport, self.telemetry.clone())
    }
}

impl From<ExecReport> for SplitOutcome {
    fn from(report: ExecReport) -> SplitOutcome {
        SplitOutcome {
            outcome: report.outcome,
            interactions: report.interactions,
            server_cost: report.server_cost,
            transport: report.transport,
        }
    }
}

/// Runs `main` of an ordinary (unsplit) program.
///
/// # Errors
///
/// Returns a [`RuntimeError`] for execution faults or a missing/ill-typed
/// entry function.
pub fn run_program(program: &Program, args: &[RtValue]) -> Result<Outcome, RuntimeError> {
    run_function(program, "main", args, ExecConfig::new())
}

/// Runs a named free function of an ordinary (unsplit) program.
///
/// # Errors
///
/// Returns a [`RuntimeError`] for execution faults or a missing/ill-typed
/// entry function.
pub fn run_function(
    program: &Program,
    name: &str,
    args: &[RtValue],
    config: ExecConfig,
) -> Result<Outcome, RuntimeError> {
    let mut interp = Interp::new(program, config);
    interp.run(name, args)
}

/// Runs `main` of a split program in process: installs `hidden` on a fresh
/// [`SecureServer`], connects an [`InProcessChannel`] with zero round-trip
/// cost, and executes the open program against it.
///
/// Equivalent to `Executor::new(open, hidden).run(args)` — use
/// [`Executor`] directly for batching, latency, faults or telemetry, and
/// [`Interp`] for custom channels (TCP, tracing).
///
/// # Examples
///
/// ```
/// let program = hps_lang::parse(
///     "fn f(x: int) -> int { var a: int = x * 2; return a; }
///      fn main() { print(f(21)); }",
/// )?;
/// let plan = hps_core::SplitPlan::single(&program, "f", "a")?;
/// let split = hps_core::split_program(&program, &plan)?;
/// let replay = hps_runtime::run_split(&split.open, &split.hidden, &[])?;
/// assert_eq!(replay.outcome.output, ["42"]);
/// assert!(replay.interactions > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Returns a [`RuntimeError`] for execution faults on either side.
pub fn run_split(
    open: &Program,
    hidden: &HiddenProgram,
    args: &[RtValue],
) -> Result<SplitOutcome, RuntimeError> {
    Executor::new(open, hidden)
        .run(args)
        .map(SplitOutcome::from)
}

/// [`run_split`] with round-trip batching enabled: hidden calls marked
/// `deferred` by the `hps-core` deferrable-call pass are buffered and
/// coalesced with the next demanded call into a single interaction.
///
/// Program output and the sequence of logical fragment calls the secure
/// side serves are identical to [`run_split`]; only
/// [`SplitOutcome::interactions`] (and the round-trip share of the cost)
/// shrinks.
///
/// # Errors
///
/// Returns a [`RuntimeError`] for execution faults on either side.
pub fn run_split_batched(
    open: &Program,
    hidden: &HiddenProgram,
    args: &[RtValue],
) -> Result<SplitOutcome, RuntimeError> {
    Executor::new(open, hidden)
        .batching(true)
        .run(args)
        .map(SplitOutcome::from)
}

/// [`run_split`] with an explicit round-trip cost and configuration.
///
/// # Errors
///
/// Returns a [`RuntimeError`] for execution faults on either side.
pub fn run_split_with_rtt(
    open: &Program,
    hidden: &HiddenProgram,
    args: &[RtValue],
    rtt: u64,
    config: ExecConfig,
) -> Result<SplitOutcome, RuntimeError> {
    Executor::new(open, hidden)
        .config(config)
        .rtt(rtt)
        .run(args)
        .map(SplitOutcome::from)
}

/// [`run_split`] under injected transport faults: wraps the in-process
/// channel in a [`crate::fault::FaultyChannel`] driven by `plan`. With any
/// plan — however hostile — the outcome, interaction count and server-side
/// call sequence are identical to [`run_split`]; only
/// [`SplitOutcome::transport`] records the turbulence.
///
/// # Errors
///
/// Returns a [`RuntimeError`] for execution faults on either side, or a
/// terminal transport error if the plan exhausts the retry budget.
pub fn run_split_faulty(
    open: &Program,
    hidden: &HiddenProgram,
    args: &[RtValue],
    plan: crate::fault::FaultPlan,
) -> Result<SplitOutcome, RuntimeError> {
    Executor::new(open, hidden)
        .faults(plan)
        .run(args)
        .map(SplitOutcome::from)
}

/// Upper bound on buffered deferred calls before a forced flush.
const MAX_PENDING_CALLS: usize = 4096;

enum Flow {
    Normal,
    Break,
    Continue,
    Return(RtValue),
}

struct Frame {
    locals: Vec<RtValue>,
    activation: Option<(ComponentId, u64)>,
}

/// The interpreter. Most callers use the [`run_program`] / [`run_split`]
/// helpers; construct an [`Interp`] directly to attach a custom [`Channel`]
/// (TCP, tracing) or to reuse global state across entry calls.
pub struct Interp<'a> {
    program: &'a Program,
    config: ExecConfig,
    globals: Vec<RtValue>,
    output: Vec<String>,
    cost: u64,
    steps: u64,
    depth: usize,
    channel: Option<&'a mut dyn Channel>,
    meta: Option<&'a SplitMeta>,
    next_activation: u64,
    next_instance: u64,
    /// Deferred hidden calls awaiting one coalesced round trip, with the
    /// result place (if any) each reply must land in. The deferrable-call
    /// pass guarantees a result-bearing entry is flushed within the frame
    /// that buffered it.
    pending: Vec<PendingCall>,
    pending_results: Vec<Option<Place>>,
    recorder: RecorderHandle,
}

impl<'a> Interp<'a> {
    /// Creates an interpreter with initialized globals and no channel.
    pub fn new(program: &'a Program, config: ExecConfig) -> Interp<'a> {
        let globals = program
            .globals
            .iter()
            .map(|g| match (&g.ty, g.array_len) {
                (Ty::Array(elem), Some(len)) => RtValue::new_array(elem, len),
                (_, _) => g
                    .init
                    .map(RtValue::from_const)
                    .unwrap_or_else(|| RtValue::default_of(&g.ty)),
            })
            .collect();
        Interp {
            program,
            config,
            globals,
            output: Vec::new(),
            cost: 0,
            steps: 0,
            depth: 0,
            channel: None,
            meta: None,
            next_activation: 1,
            next_instance: 1,
            pending: Vec::new(),
            pending_results: Vec::new(),
            recorder: RecorderHandle::none(),
        }
    }

    /// Attaches a channel and routing metadata for split execution
    /// (builder style).
    pub fn with_channel(mut self, channel: &'a mut dyn Channel, meta: &'a SplitMeta) -> Interp<'a> {
        self.channel = Some(channel);
        self.meta = Some(meta);
        self
    }

    /// Attaches a telemetry recorder firing `Deferred` / `Flush` /
    /// `OpenRun` events (builder style). Recording never changes results,
    /// costs or step counts.
    pub fn with_recorder(mut self, recorder: RecorderHandle) -> Interp<'a> {
        self.recorder = recorder;
        self
    }

    /// Runs a named free function to completion.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] for execution faults or a missing entry.
    pub fn run(&mut self, name: &str, args: &[RtValue]) -> Result<Outcome, RuntimeError> {
        let fid = self
            .program
            .func_by_name(name)
            .ok_or_else(|| RuntimeError::NoSuchFunction(name.to_string()))?;
        let func = self.program.func(fid);
        if args.len() != func.num_params {
            return Err(RuntimeError::BadEntryArgs(format!(
                "`{name}` takes {} argument(s), got {}",
                func.num_params,
                args.len()
            )));
        }
        let ret = self.call_function(fid, args.to_vec())?;
        // Deferred calls to persistent (global/class) components may still
        // be buffered; the run's hidden-side effects must be complete
        // before the outcome is observable.
        self.flush_pending(None, false)?;
        self.recorder.record(Event::OpenRun {
            steps: self.steps,
            cost: self.cost,
        });
        Ok(Outcome {
            ret,
            output: std::mem::take(&mut self.output),
            cost: self.cost,
            steps: self.steps,
        })
    }

    fn call_function(&mut self, fid: FuncId, args: Vec<RtValue>) -> Result<RtValue, RuntimeError> {
        self.depth += 1;
        if self.depth > self.config.max_call_depth {
            self.depth -= 1;
            return Err(RuntimeError::StackOverflow {
                limit: self.config.max_call_depth,
            });
        }
        self.cost += self.config.cost_model.call;
        let func = self.program.func(fid);
        let mut locals = args;
        for decl in func.locals.iter().skip(locals.len()) {
            locals.push(RtValue::default_of(&decl.ty));
        }
        let activation = match func.split_component {
            Some(c) if self.meta.and_then(|m| m.kind_of(c)) == Some(MetaKind::Function) => {
                let id = self.next_activation;
                self.next_activation += 1;
                Some((c, id))
            }
            _ => None,
        };
        let mut frame = Frame { locals, activation };
        let mut result = self.exec_block(&mut frame, &func.body);
        // Buffered calls must reach the server before this activation's
        // state is freed below. (On error the run's outcome is discarded,
        // so the buffer is dropped instead of flushed.)
        if result.is_ok() && frame.activation.is_some() {
            if let Err(e) = self.flush_pending(Some(&mut frame), false) {
                result = Err(e);
            }
        }
        if result.is_err() {
            self.pending.clear();
            self.pending_results.clear();
        }
        // Free secure-side state regardless of how the function exits.
        if let Some((c, id)) = frame.activation {
            if let Some(chan) = self.channel.as_deref_mut() {
                chan.release(c, id)?;
            }
        }
        self.depth -= 1;
        match result? {
            Flow::Return(v) => Ok(v),
            // Falling off the end returns the zero value of the return type
            // (void functions return Uninit-safe Int 0 placeholder that
            // callers never observe — the type checker rejects using them).
            _ => Ok(match &func.ret_ty {
                Ty::Void => RtValue::Int(0),
                ty => RtValue::default_of(ty),
            }),
        }
    }

    fn tick(&mut self) -> Result<(), RuntimeError> {
        self.steps += 1;
        if self.steps > self.config.max_steps {
            return Err(RuntimeError::StepLimitExceeded {
                limit: self.config.max_steps,
            });
        }
        Ok(())
    }

    fn exec_block(&mut self, frame: &mut Frame, block: &Block) -> Result<Flow, RuntimeError> {
        for stmt in &block.stmts {
            self.tick()?;
            match &stmt.kind {
                StmtKind::Assign { place, value } => {
                    let v = self.eval(frame, value)?;
                    self.cost += self.config.cost_model.assign;
                    self.assign_place(frame, place, v)?;
                }
                StmtKind::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    self.cost += self.config.cost_model.branch;
                    let taken = self.truthy(frame, cond)?;
                    let flow = if taken {
                        self.exec_block(frame, then_blk)?
                    } else {
                        self.exec_block(frame, else_blk)?
                    };
                    match flow {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
                StmtKind::While { cond, body } => loop {
                    self.tick()?;
                    self.cost += self.config.cost_model.branch;
                    if !self.truthy(frame, cond)? {
                        break;
                    }
                    match self.exec_block(frame, body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                },
                StmtKind::Return(e) => {
                    let v = match e {
                        Some(e) => self.eval(frame, e)?,
                        None => RtValue::Int(0),
                    };
                    return Ok(Flow::Return(v));
                }
                StmtKind::Break => return Ok(Flow::Break),
                StmtKind::Continue => return Ok(Flow::Continue),
                StmtKind::ExprStmt(e) => {
                    self.eval(frame, e)?;
                }
                StmtKind::Print(e) => {
                    let v = self.eval(frame, e)?;
                    self.cost += self.config.cost_model.print;
                    self.output.push(v.to_string());
                }
                StmtKind::HiddenCall {
                    component,
                    label,
                    args,
                    result,
                    deferred,
                } => {
                    if *deferred && self.config.batching {
                        self.defer_call(frame, *component, *label, args, result.clone())?;
                    } else {
                        let reply = self.hidden_call(frame, *component, *label, args)?;
                        if let Some(place) = result {
                            self.cost += self.config.cost_model.assign;
                            self.assign_place(frame, place, RtValue::from_const(reply))?;
                        }
                    }
                }
                StmtKind::Nop => {}
            }
        }
        Ok(Flow::Normal)
    }

    /// Evaluates hidden-call arguments to wire scalars.
    fn marshal_args(
        &mut self,
        frame: &mut Frame,
        args: &[Expr],
    ) -> Result<Vec<hps_ir::Value>, RuntimeError> {
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            let v = self.eval(frame, a)?;
            vals.push(v.to_const().ok_or(RuntimeError::TypeMismatch {
                expected: "scalar hidden-call argument",
                found: "aggregate",
            })?);
        }
        self.cost += self.config.cost_model.marshal_per_arg * vals.len() as u64;
        Ok(vals)
    }

    /// The state key a hidden call routes to: the receiver's instance id
    /// for class components, 0 for globals, the current activation for
    /// split functions.
    fn activation_key(&self, frame: &Frame, component: ComponentId) -> Result<u64, RuntimeError> {
        let meta = self.meta.ok_or(RuntimeError::NoChannel)?;
        match meta.kind_of(component) {
            Some(MetaKind::Class) => match frame.locals.first() {
                Some(RtValue::Object(obj)) => Ok(obj.borrow().instance_id),
                _ => Err(RuntimeError::Channel(
                    "class-component hidden call outside a method".into(),
                )),
            },
            // One shared hidden state for a hidden global.
            Some(MetaKind::Global) => Ok(0),
            _ => match frame.activation {
                Some((c, id)) if c == component => Ok(id),
                _ => Err(RuntimeError::Channel(
                    "hidden call outside its split function's activation".into(),
                )),
            },
        }
    }

    fn hidden_call(
        &mut self,
        frame: &mut Frame,
        component: ComponentId,
        label: hps_ir::FragLabel,
        args: &[Expr],
    ) -> Result<hps_ir::Value, RuntimeError> {
        let vals = self.marshal_args(frame, args)?;
        let key = self.activation_key(frame, component)?;
        if self.pending.is_empty() {
            let chan = self.channel.as_deref_mut().ok_or(RuntimeError::NoChannel)?;
            let reply = chan.call(component, key, label, &vals)?;
            self.cost += chan.rtt_cost() + reply.server_cost;
            Ok(reply.value)
        } else {
            // Ship the deferred buffer and this demanded call together in
            // one round trip; the demanded reply is the batch's last.
            self.pending.push(PendingCall {
                component,
                key,
                label,
                args: vals,
            });
            self.pending_results.push(None);
            let last = self.flush_pending(Some(frame), true)?;
            Ok(last.expect("flushing a non-empty batch yields a reply"))
        }
    }

    /// Buffers a hidden call marked deferrable: argument evaluation (and
    /// its cost) happens now, transport waits for the next flush point.
    fn defer_call(
        &mut self,
        frame: &mut Frame,
        component: ComponentId,
        label: hps_ir::FragLabel,
        args: &[Expr],
        result: Option<Place>,
    ) -> Result<(), RuntimeError> {
        let vals = self.marshal_args(frame, args)?;
        let key = self.activation_key(frame, component)?;
        // Fail like an immediate call would if no channel is attached.
        if self.channel.is_none() {
            return Err(RuntimeError::NoChannel);
        }
        self.pending.push(PendingCall {
            component,
            key,
            label,
            args: vals,
        });
        self.pending_results.push(result);
        self.recorder.record(Event::Deferred);
        // Deterministic cap: an update-only loop may never demand a value,
        // so bound the buffer (and its memory) by flushing periodically.
        // The flush happens in the buffering frame, so result places stay
        // valid.
        if self.pending.len() >= MAX_PENDING_CALLS {
            self.flush_pending(Some(frame), false)?;
        }
        Ok(())
    }

    /// Sends every buffered call in one batched round trip, assigns replies
    /// to their recorded result places, and returns the last reply (the
    /// value of the demanded call that triggered the flush, when there is
    /// one). No-op on an empty buffer.
    fn flush_pending(
        &mut self,
        mut frame: Option<&mut Frame>,
        demanded: bool,
    ) -> Result<Option<hps_ir::Value>, RuntimeError> {
        if self.pending.is_empty() {
            return Ok(None);
        }
        let calls = std::mem::take(&mut self.pending);
        let results = std::mem::take(&mut self.pending_results);
        self.recorder.record(Event::Flush {
            pending: calls.len() as u64,
            demanded,
        });
        let chan = self.channel.as_deref_mut().ok_or(RuntimeError::NoChannel)?;
        let replies = chan.call_batch(&calls)?;
        self.cost += chan.rtt_cost();
        let mut last = None;
        for (reply, place) in replies.into_iter().zip(results) {
            self.cost += reply.server_cost;
            if let Some(place) = place {
                // The deferrable-call pass only defers result-bearing calls
                // that flush within the frame that buffered them.
                let frame = frame
                    .as_deref_mut()
                    .expect("deferred result flushed outside its frame");
                self.cost += self.config.cost_model.assign;
                self.assign_place(frame, &place, RtValue::from_const(reply.value))?;
            }
            last = Some(reply.value);
        }
        Ok(last)
    }

    fn truthy(&mut self, frame: &mut Frame, cond: &Expr) -> Result<bool, RuntimeError> {
        match self.eval(frame, cond)? {
            RtValue::Bool(b) => Ok(b),
            v => Err(RuntimeError::TypeMismatch {
                expected: "bool condition",
                found: v.type_name(),
            }),
        }
    }

    fn read_place(&mut self, frame: &mut Frame, place: &Place) -> Result<RtValue, RuntimeError> {
        match place {
            Place::Local(id) => Ok(frame.locals[id.index()].clone()),
            Place::Global(id) => Ok(self.globals[id.index()].clone()),
            Place::Index { base, index } => {
                let arr = self.read_place(frame, base)?;
                let idx = self.eval_index(frame, index)?;
                self.cost += self.config.cost_model.index;
                match arr {
                    RtValue::Array(a) => {
                        let a = a.borrow();
                        a.get(idx_usize(idx, a.len())?).cloned().ok_or(
                            RuntimeError::IndexOutOfBounds {
                                index: idx,
                                len: a.len(),
                            },
                        )
                    }
                    RtValue::Uninit => Err(RuntimeError::UninitializedValue),
                    v => Err(RuntimeError::TypeMismatch {
                        expected: "array",
                        found: v.type_name(),
                    }),
                }
            }
            Place::Field { obj, field, .. } => {
                let o = self.eval(frame, obj)?;
                self.cost += self.config.cost_model.field;
                match o {
                    RtValue::Object(o) => Ok(o.borrow().fields[field.index()].clone()),
                    RtValue::Uninit => Err(RuntimeError::UninitializedValue),
                    v => Err(RuntimeError::TypeMismatch {
                        expected: "object",
                        found: v.type_name(),
                    }),
                }
            }
        }
    }

    fn assign_place(
        &mut self,
        frame: &mut Frame,
        place: &Place,
        value: RtValue,
    ) -> Result<(), RuntimeError> {
        match place {
            Place::Local(id) => {
                frame.locals[id.index()] = value;
                Ok(())
            }
            Place::Global(id) => {
                self.globals[id.index()] = value;
                Ok(())
            }
            Place::Index { base, index } => {
                let arr = self.read_place(frame, base)?;
                let idx = self.eval_index(frame, index)?;
                self.cost += self.config.cost_model.index;
                match arr {
                    RtValue::Array(a) => {
                        let mut a = a.borrow_mut();
                        let len = a.len();
                        let i = idx_usize(idx, len)?;
                        if i >= len {
                            return Err(RuntimeError::IndexOutOfBounds { index: idx, len });
                        }
                        a[i] = value;
                        Ok(())
                    }
                    RtValue::Uninit => Err(RuntimeError::UninitializedValue),
                    v => Err(RuntimeError::TypeMismatch {
                        expected: "array",
                        found: v.type_name(),
                    }),
                }
            }
            Place::Field { obj, field, .. } => {
                let o = self.eval(frame, obj)?;
                self.cost += self.config.cost_model.field;
                match o {
                    RtValue::Object(o) => {
                        o.borrow_mut().fields[field.index()] = value;
                        Ok(())
                    }
                    RtValue::Uninit => Err(RuntimeError::UninitializedValue),
                    v => Err(RuntimeError::TypeMismatch {
                        expected: "object",
                        found: v.type_name(),
                    }),
                }
            }
        }
    }

    fn eval_index(&mut self, frame: &mut Frame, index: &Expr) -> Result<i64, RuntimeError> {
        match self.eval(frame, index)? {
            RtValue::Int(i) => Ok(i),
            v => Err(RuntimeError::TypeMismatch {
                expected: "int index",
                found: v.type_name(),
            }),
        }
    }

    fn eval(&mut self, frame: &mut Frame, e: &Expr) -> Result<RtValue, RuntimeError> {
        Ok(match e {
            Expr::Const(v) => RtValue::from_const(*v),
            Expr::Local(id) => frame.locals[id.index()].clone(),
            Expr::Global(id) => self.globals[id.index()].clone(),
            Expr::Index { base, index } => {
                let arr = self.eval(frame, base)?;
                let idx = self.eval_index(frame, index)?;
                self.cost += self.config.cost_model.index;
                match arr {
                    RtValue::Array(a) => {
                        let a = a.borrow();
                        a.get(idx_usize(idx, a.len())?).cloned().ok_or(
                            RuntimeError::IndexOutOfBounds {
                                index: idx,
                                len: a.len(),
                            },
                        )?
                    }
                    RtValue::Uninit => return Err(RuntimeError::UninitializedValue),
                    v => {
                        return Err(RuntimeError::TypeMismatch {
                            expected: "array",
                            found: v.type_name(),
                        })
                    }
                }
            }
            Expr::FieldGet { obj, field, .. } => {
                let o = self.eval(frame, obj)?;
                self.cost += self.config.cost_model.field;
                match o {
                    RtValue::Object(o) => o.borrow().fields[field.index()].clone(),
                    RtValue::Uninit => return Err(RuntimeError::UninitializedValue),
                    v => {
                        return Err(RuntimeError::TypeMismatch {
                            expected: "object",
                            found: v.type_name(),
                        })
                    }
                }
            }
            Expr::Unary { op, arg } => {
                self.cost += self.config.cost_model.unop;
                let a = self.eval(frame, arg)?;
                crate::ops::unop(*op, &a)?
            }
            Expr::Binary { op, lhs, rhs } => {
                self.cost += self.config.cost_model.binop;
                if *op == hps_ir::BinOp::And {
                    return if self.truthy(frame, lhs)? {
                        self.eval(frame, rhs)
                    } else {
                        Ok(RtValue::Bool(false))
                    };
                }
                if *op == hps_ir::BinOp::Or {
                    return if self.truthy(frame, lhs)? {
                        Ok(RtValue::Bool(true))
                    } else {
                        self.eval(frame, rhs)
                    };
                }
                let a = self.eval(frame, lhs)?;
                let b = self.eval(frame, rhs)?;
                crate::ops::binop(*op, &a, &b)?
            }
            Expr::Call { callee, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(frame, a)?);
                }
                self.call_function(callee.func(), vals)?
            }
            Expr::BuiltinCall { builtin, args } => {
                if *builtin == Builtin::Len {
                    self.cost += self.config.cost_model.builtin;
                    let a = self.eval(frame, &args[0])?;
                    match a {
                        RtValue::Array(arr) => RtValue::Int(arr.borrow().len() as i64),
                        RtValue::Uninit => return Err(RuntimeError::UninitializedValue),
                        v => {
                            return Err(RuntimeError::TypeMismatch {
                                expected: "array",
                                found: v.type_name(),
                            })
                        }
                    }
                } else {
                    self.cost += if builtin.is_transcendental() {
                        self.config.cost_model.transcendental
                    } else {
                        self.config.cost_model.builtin
                    };
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(self.eval(frame, a)?);
                    }
                    crate::ops::builtin(*builtin, &vals)?
                }
            }
            Expr::NewArray { elem, len } => {
                let n = self.eval_index(frame, len)?;
                if n < 0 {
                    return Err(RuntimeError::IndexOutOfBounds { index: n, len: 0 });
                }
                self.cost += self.config.cost_model.alloc_per_elem * n as u64;
                RtValue::new_array(elem, n as usize)
            }
            Expr::NewObject(class) => {
                self.cost += self.config.cost_model.alloc_object;
                let cdef = self.program.class(*class);
                let instance_id = self.next_instance;
                self.next_instance += 1;
                RtValue::Object(Rc::new(RefCell::new(ObjData {
                    class: *class,
                    instance_id,
                    fields: cdef
                        .fields
                        .iter()
                        .map(|f| RtValue::default_of(&f.ty))
                        .collect(),
                })))
            }
        })
    }

    /// The value of a global (for tests and experiment harnesses).
    pub fn global(&self, id: hps_ir::GlobalId) -> &RtValue {
        &self.globals[id.index()]
    }

    /// Virtual cost spent so far.
    pub fn cost(&self) -> u64 {
        self.cost
    }
}

fn idx_usize(idx: i64, len: usize) -> Result<usize, RuntimeError> {
    if idx < 0 {
        Err(RuntimeError::IndexOutOfBounds { index: idx, len })
    } else {
        Ok(idx as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Outcome {
        let p = hps_lang::parse(src).expect("parses");
        run_program(&p, &[]).expect("runs")
    }

    fn run_err(src: &str) -> RuntimeError {
        let p = hps_lang::parse(src).expect("parses");
        run_program(&p, &[]).expect_err("should fail")
    }

    #[test]
    fn arithmetic_and_print() {
        let out = run("fn main() { print(2 + 3 * 4); print(10 / 3); print(10 % 3); }");
        assert_eq!(out.output, vec!["14", "3", "1"]);
        assert!(out.cost > 0);
    }

    #[test]
    fn float_formatting_is_stable() {
        let out = run("fn main() { print(1.5 + 1.5); print(0.1 + 0.2); }");
        assert_eq!(out.output[0], "3.0");
        assert!(out.output[1].starts_with("0.3"));
    }

    #[test]
    fn loops_conditionals_break_continue() {
        let out = run("fn main() {
                var i: int = 0; var s: int = 0;
                while (true) {
                    i = i + 1;
                    if (i > 10) { break; }
                    if (i % 2 == 0) { continue; }
                    s = s + i;
                }
                print(s);
            }");
        assert_eq!(out.output, vec!["25"]); // 1+3+5+7+9
    }

    #[test]
    fn functions_recursion_and_entry_args() {
        let p = hps_lang::parse(
            "fn fib(n: int) -> int {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() { print(fib(10)); }",
        )
        .unwrap();
        assert_eq!(run_program(&p, &[]).unwrap().output, vec!["55"]);
        let out = run_function(&p, "fib", &[RtValue::Int(12)], ExecConfig::new()).unwrap();
        assert_eq!(out.ret, RtValue::Int(144));
    }

    #[test]
    fn arrays_and_len() {
        let out = run("fn main() {
                var a: int[] = new int[5];
                var i: int = 0;
                while (i < len(a)) { a[i] = i * i; i = i + 1; }
                print(a[4]);
            }");
        assert_eq!(out.output, vec!["16"]);
    }

    #[test]
    fn globals_scalar_and_array() {
        let out = run("global count: int = 10;
             global buf: int[] = new int[3];
             fn main() { buf[0] = count + 1; print(buf[0]); }");
        assert_eq!(out.output, vec!["11"]);
    }

    #[test]
    fn objects_fields_and_methods() {
        let out = run("class Point {
                x: int; y: int;
                fn set(a: int, b: int) { self.x = a; self.y = b; }
                fn norm2() -> int { return self.x * self.x + self.y * self.y; }
            }
            fn main() {
                var p: Point = new Point();
                p.set(3, 4);
                print(p.norm2());
                var q: Point = new Point();
                print(q.norm2());
            }");
        assert_eq!(out.output, vec!["25", "0"]);
    }

    #[test]
    fn aggregates_are_by_reference() {
        let out = run(
            "fn fill(a: int[], v: int) { var i: int = 0; while (i < len(a)) { a[i] = v; i = i + 1; } }
             fn main() { var a: int[] = new int[2]; fill(a, 7); print(a[1]); }",
        );
        assert_eq!(out.output, vec!["7"]);
    }

    #[test]
    fn runtime_errors() {
        assert_eq!(
            run_err("fn main() { print(1 / 0); }"),
            RuntimeError::DivisionByZero
        );
        assert!(matches!(
            run_err("fn main() { var a: int[] = new int[2]; print(a[5]); }"),
            RuntimeError::IndexOutOfBounds { index: 5, len: 2 }
        ));
        assert!(matches!(
            run_err("fn main() { var a: int[] = new int[2]; print(a[-1]); }"),
            RuntimeError::IndexOutOfBounds { .. }
        ));
        assert_eq!(
            run_err("fn main() { var a: int[]; print(a[0]); }"),
            RuntimeError::UninitializedValue
        );
        assert!(matches!(
            run_err("fn main() { var a: int[] = new int[0 - 3]; }"),
            RuntimeError::IndexOutOfBounds { .. }
        ));
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let p = hps_lang::parse("fn main() { while (true) { } }").unwrap();
        let cfg = ExecConfig::new().with_max_steps(1000);
        assert!(matches!(
            run_function(&p, "main", &[], cfg),
            Err(RuntimeError::StepLimitExceeded { .. })
        ));
    }

    #[test]
    fn runaway_recursion_hits_depth_limit() {
        let p = hps_lang::parse("fn f() { f(); } fn main() { f(); }").unwrap();
        assert!(matches!(
            run_program(&p, &[]),
            Err(RuntimeError::StackOverflow { .. })
        ));
    }

    #[test]
    fn missing_entry_and_bad_args() {
        let p = hps_lang::parse("fn notmain() { }").unwrap();
        assert!(matches!(
            run_program(&p, &[]),
            Err(RuntimeError::NoSuchFunction(_))
        ));
        let p = hps_lang::parse("fn main(x: int) { print(x); }").unwrap();
        assert!(matches!(
            run_program(&p, &[]),
            Err(RuntimeError::BadEntryArgs(_))
        ));
        let out = run_program(&p, &[RtValue::Int(9)]).unwrap();
        assert_eq!(out.output, vec!["9"]);
    }

    #[test]
    fn hidden_call_without_channel_fails() {
        use hps_ir::{FragLabel, Stmt};
        let mut p = hps_lang::parse("fn main() { }").unwrap();
        let main = p.entry().unwrap();
        p.func_mut(main)
            .body
            .stmts
            .push(Stmt::new(StmtKind::HiddenCall {
                component: ComponentId::new(0),
                label: FragLabel::new(0),
                args: vec![],
                result: None,
                deferred: false,
            }));
        p.renumber_all();
        assert_eq!(run_program(&p, &[]), Err(RuntimeError::NoChannel));
    }

    #[test]
    fn short_circuit_avoids_division_by_zero() {
        let out = run("fn main() {
                var x: int = 0;
                if (x != 0 && 10 / x > 1) { print(1); } else { print(2); }
                if (x == 0 || 10 / x > 1) { print(3); }
            }");
        assert_eq!(out.output, vec!["2", "3"]);
    }

    #[test]
    fn for_loops_execute() {
        let out = run("fn main() {
                var s: int = 0; var i: int;
                for (i = 0; i < 5; i = i + 1) { s = s + i; }
                print(s);
            }");
        assert_eq!(out.output, vec!["10"]);
    }
}
