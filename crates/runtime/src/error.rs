//! Runtime errors.

use hps_ir::{ComponentId, FragLabel};
use std::error::Error;
use std::fmt;

/// An error raised during execution of a program, a fragment, or the
/// open↔hidden channel.
#[derive(Clone, PartialEq, Debug)]
pub enum RuntimeError {
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Array access out of bounds.
    IndexOutOfBounds {
        /// Attempted index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// Read of an uninitialized array/object local.
    UninitializedValue,
    /// A value had the wrong type at runtime (indicates a front-end or
    /// transformation bug; the type checker should prevent this).
    TypeMismatch {
        /// What the operation expected.
        expected: &'static str,
        /// What it found.
        found: &'static str,
    },
    /// Call stack exceeded the configured limit.
    StackOverflow {
        /// The configured limit.
        limit: usize,
    },
    /// Step budget exceeded (guards against non-terminating programs).
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// Entry function not found.
    NoSuchFunction(String),
    /// Wrong number or types of arguments to the entry function.
    BadEntryArgs(String),
    /// The open component called a fragment the hidden side does not have.
    UnknownFragment {
        /// Component addressed.
        component: ComponentId,
        /// Fragment label addressed.
        label: FragLabel,
    },
    /// The open component addressed a component the hidden side does not
    /// have.
    UnknownComponent(ComponentId),
    /// A fragment body contained a construct fragments may not execute
    /// (calls, aggregates, returns).
    IllegalFragmentOp(&'static str),
    /// Transport-level failure (TCP channel).
    Channel(String),
    /// A hidden call was executed but no channel is attached (running an
    /// open component without its hidden half).
    NoChannel,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for array of length {len}")
            }
            RuntimeError::UninitializedValue => {
                write!(f, "use of uninitialized array or object variable")
            }
            RuntimeError::TypeMismatch { expected, found } => {
                write!(
                    f,
                    "type mismatch at runtime: expected {expected}, found {found}"
                )
            }
            RuntimeError::StackOverflow { limit } => {
                write!(f, "call depth exceeded limit of {limit}")
            }
            RuntimeError::StepLimitExceeded { limit } => {
                write!(f, "execution exceeded step limit of {limit}")
            }
            RuntimeError::NoSuchFunction(name) => write!(f, "no function named `{name}`"),
            RuntimeError::BadEntryArgs(msg) => write!(f, "bad entry arguments: {msg}"),
            RuntimeError::UnknownFragment { component, label } => {
                write!(
                    f,
                    "hidden side has no fragment {label} in component {component}"
                )
            }
            RuntimeError::UnknownComponent(c) => {
                write!(f, "hidden side has no component {c}")
            }
            RuntimeError::IllegalFragmentOp(what) => {
                write!(f, "fragment attempted an illegal operation: {what}")
            }
            RuntimeError::Channel(msg) => write!(f, "channel failure: {msg}"),
            RuntimeError::NoChannel => {
                write!(
                    f,
                    "open component made a hidden call but no channel is attached"
                )
            }
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert_eq!(RuntimeError::DivisionByZero.to_string(), "division by zero");
        let e = RuntimeError::IndexOutOfBounds { index: 5, len: 3 };
        assert!(e.to_string().contains("index 5"));
        let e = RuntimeError::UnknownFragment {
            component: ComponentId::new(1),
            label: FragLabel::new(2),
        };
        assert!(e.to_string().contains("L2"));
        assert!(e.to_string().contains("H1"));
    }

    #[test]
    fn is_send_sync_error() {
        fn take(_: Box<dyn Error + Send + Sync>) {}
        take(Box::new(RuntimeError::NoChannel));
    }
}
