//! Runtime errors.

use hps_ir::{ComponentId, FragLabel};
use std::error::Error;
use std::fmt;

/// Whether a transport failure is worth retrying.
///
/// The reliability layer ([`crate::tcp`] retry/backoff, [`crate::fault`]
/// injection) only re-attempts faults classified [`FaultClass::Retryable`];
/// everything else — protocol violations, version mismatches, sequence
/// gaps — is [`FaultClass::Terminal`] and propagates immediately.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultClass {
    /// Transient I/O conditions: timeouts, resets, closed or refused
    /// connections, mid-frame EOF from a dying peer. A reconnect + replay
    /// may cure these without changing the logical call sequence.
    Retryable,
    /// Protocol or configuration failures a retry cannot fix.
    Terminal,
}

impl FaultClass {
    /// Classifies an I/O error: connection lifecycle and timing failures
    /// are retryable, everything else (permissions, invalid input…) is
    /// terminal.
    pub fn of_io(e: &std::io::Error) -> FaultClass {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::TimedOut
            | ErrorKind::WouldBlock
            | ErrorKind::Interrupted
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::ConnectionRefused
            | ErrorKind::BrokenPipe
            | ErrorKind::NotConnected
            | ErrorKind::UnexpectedEof => FaultClass::Retryable,
            _ => FaultClass::Terminal,
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultClass::Retryable => write!(f, "retryable"),
            FaultClass::Terminal => write!(f, "terminal"),
        }
    }
}

/// An error raised during execution of a program, a fragment, or the
/// open↔hidden channel.
#[derive(Clone, PartialEq, Debug)]
pub enum RuntimeError {
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Array access out of bounds.
    IndexOutOfBounds {
        /// Attempted index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// Read of an uninitialized array/object local.
    UninitializedValue,
    /// A value had the wrong type at runtime (indicates a front-end or
    /// transformation bug; the type checker should prevent this).
    TypeMismatch {
        /// What the operation expected.
        expected: &'static str,
        /// What it found.
        found: &'static str,
    },
    /// Call stack exceeded the configured limit.
    StackOverflow {
        /// The configured limit.
        limit: usize,
    },
    /// Step budget exceeded (guards against non-terminating programs).
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// Entry function not found.
    NoSuchFunction(String),
    /// Wrong number or types of arguments to the entry function.
    BadEntryArgs(String),
    /// The open component called a fragment the hidden side does not have.
    UnknownFragment {
        /// Component addressed.
        component: ComponentId,
        /// Fragment label addressed.
        label: FragLabel,
    },
    /// The open component addressed a component the hidden side does not
    /// have.
    UnknownComponent(ComponentId),
    /// A fragment body contained a construct fragments may not execute
    /// (calls, aggregates, returns).
    IllegalFragmentOp(&'static str),
    /// Protocol-level channel failure (malformed frames, remote execution
    /// errors, batch shape mismatches). Always terminal: retrying resends
    /// the same bytes and fails the same way.
    Channel(String),
    /// The server's replay window rejected a sequence number: the client
    /// skipped ahead, or rewound past the bounded cache. Terminal — the
    /// exactly-once guarantee cannot be re-established for this session,
    /// so retrying would only re-present the same out-of-window sequence.
    SequenceGap {
        /// The sequence number the client presented.
        got: u64,
        /// The sequence number the server's replay window expected.
        expected: u64,
    },
    /// I/O-level transport failure, classified retryable or terminal (see
    /// [`FaultClass`]). `op` names the failing operation (`connect`,
    /// `accept`, `read`, `write`…).
    Transport {
        /// Retry classification.
        class: FaultClass,
        /// The transport operation that failed.
        op: &'static str,
        /// Human-readable detail (peer address, OS error…).
        detail: String,
    },
    /// A hidden call was executed but no channel is attached (running an
    /// open component without its hidden half).
    NoChannel,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for array of length {len}")
            }
            RuntimeError::UninitializedValue => {
                write!(f, "use of uninitialized array or object variable")
            }
            RuntimeError::TypeMismatch { expected, found } => {
                write!(
                    f,
                    "type mismatch at runtime: expected {expected}, found {found}"
                )
            }
            RuntimeError::StackOverflow { limit } => {
                write!(f, "call depth exceeded limit of {limit}")
            }
            RuntimeError::StepLimitExceeded { limit } => {
                write!(f, "execution exceeded step limit of {limit}")
            }
            RuntimeError::NoSuchFunction(name) => write!(f, "no function named `{name}`"),
            RuntimeError::BadEntryArgs(msg) => write!(f, "bad entry arguments: {msg}"),
            RuntimeError::UnknownFragment { component, label } => {
                write!(
                    f,
                    "hidden side has no fragment {label} in component {component}"
                )
            }
            RuntimeError::UnknownComponent(c) => {
                write!(f, "hidden side has no component {c}")
            }
            RuntimeError::IllegalFragmentOp(what) => {
                write!(f, "fragment attempted an illegal operation: {what}")
            }
            RuntimeError::Channel(msg) => write!(f, "channel failure: {msg}"),
            RuntimeError::SequenceGap { got, expected } => {
                write!(
                    f,
                    "sequence gap: got {got}, expected {expected} \
                     (terminal: the session's exactly-once window cannot resume)"
                )
            }
            RuntimeError::Transport { class, op, detail } => {
                write!(f, "transport failure ({class}) during {op}: {detail}")
            }
            RuntimeError::NoChannel => {
                write!(
                    f,
                    "open component made a hidden call but no channel is attached"
                )
            }
        }
    }
}

impl RuntimeError {
    /// Builds a [`RuntimeError::Transport`] from a failing I/O operation,
    /// classifying it via [`FaultClass::of_io`].
    pub fn transport(op: &'static str, e: &std::io::Error) -> RuntimeError {
        RuntimeError::Transport {
            class: FaultClass::of_io(e),
            op,
            detail: e.to_string(),
        }
    }

    /// True when a retry (possibly after a reconnect) might cure this
    /// failure. Only [`RuntimeError::Transport`] faults classified
    /// [`FaultClass::Retryable`] qualify; protocol and execution errors are
    /// deterministic and never retried.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            RuntimeError::Transport {
                class: FaultClass::Retryable,
                ..
            }
        )
    }

    /// Classifies a remote execution-error message into a structured
    /// error. The session server reports replay-window violations as
    /// `sequence gap: got N, expected M` (the dedicated terminal
    /// [`RuntimeError::SequenceGap`]) and unrecoverable fragment panics
    /// as `session poisoned: …` (a [`FaultClass::Terminal`] transport
    /// fault — retrying re-executes the same deterministic panic);
    /// everything else stays a generic [`RuntimeError::Channel`].
    pub fn from_remote(msg: &str) -> RuntimeError {
        if let Some(rest) = msg.strip_prefix("sequence gap: got ") {
            if let Some((got, expected)) = rest.split_once(", expected ") {
                if let (Ok(got), Ok(expected)) = (got.trim().parse(), expected.trim().parse()) {
                    return RuntimeError::SequenceGap { got, expected };
                }
            }
        }
        if msg.starts_with("session poisoned") {
            return RuntimeError::Transport {
                class: FaultClass::Terminal,
                op: "panic",
                detail: msg.to_string(),
            };
        }
        RuntimeError::Channel(format!("remote: {msg}"))
    }

    /// Prefixes the detail of a transport/channel error with the peer that
    /// caused it, so multi-client servers can attribute failures.
    #[must_use]
    pub fn with_peer(self, peer: std::net::SocketAddr) -> RuntimeError {
        match self {
            RuntimeError::Transport { class, op, detail } => RuntimeError::Transport {
                class,
                op,
                detail: format!("peer {peer}: {detail}"),
            },
            RuntimeError::Channel(msg) => RuntimeError::Channel(format!("peer {peer}: {msg}")),
            other => other,
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert_eq!(RuntimeError::DivisionByZero.to_string(), "division by zero");
        let e = RuntimeError::IndexOutOfBounds { index: 5, len: 3 };
        assert!(e.to_string().contains("index 5"));
        let e = RuntimeError::UnknownFragment {
            component: ComponentId::new(1),
            label: FragLabel::new(2),
        };
        assert!(e.to_string().contains("L2"));
        assert!(e.to_string().contains("H1"));
    }

    #[test]
    fn retryable_classification() {
        use std::io::{Error as IoError, ErrorKind};
        let reset = RuntimeError::transport("read", &IoError::from(ErrorKind::ConnectionReset));
        assert!(reset.is_retryable());
        assert!(reset.to_string().contains("retryable"));
        assert!(reset.to_string().contains("read"));
        let denied = RuntimeError::transport("bind", &IoError::from(ErrorKind::PermissionDenied));
        assert!(!denied.is_retryable());
        // Protocol errors are never retryable.
        assert!(!RuntimeError::Channel("bad tag".into()).is_retryable());
        assert!(!RuntimeError::DivisionByZero.is_retryable());
    }

    #[test]
    fn sequence_gaps_are_dedicated_and_terminal() {
        // The satellite contract: a replay-window violation is its own
        // variant with a descriptive message, never a generic channel
        // error, and it is never retryable.
        let e = RuntimeError::from_remote("sequence gap: got 40, expected 2");
        assert_eq!(
            e,
            RuntimeError::SequenceGap {
                got: 40,
                expected: 2
            }
        );
        assert!(!e.is_retryable(), "a gap retransmits the same gap");
        let msg = e.to_string();
        assert!(msg.contains("got 40"));
        assert!(msg.contains("expected 2"));
        assert!(msg.contains("terminal"));
        // Anything else from the remote stays a channel error.
        let other = RuntimeError::from_remote("division by zero");
        assert!(matches!(&other, RuntimeError::Channel(m) if m.contains("remote:")));
        // A malformed gap message degrades gracefully too.
        let odd = RuntimeError::from_remote("sequence gap: got lots, expected few");
        assert!(matches!(odd, RuntimeError::Channel(_)));
        // Poisoned sessions are terminal transport faults, never retried.
        let p = RuntimeError::from_remote("session poisoned: fragment panicked: boom");
        assert!(matches!(
            &p,
            RuntimeError::Transport {
                class: FaultClass::Terminal,
                op: "panic",
                ..
            }
        ));
        assert!(!p.is_retryable());
        assert!(p.to_string().contains("boom"));
    }

    #[test]
    fn with_peer_attributes_failures() {
        use std::io::{Error as IoError, ErrorKind};
        let peer: std::net::SocketAddr = "127.0.0.1:4321".parse().unwrap();
        let e =
            RuntimeError::transport("read", &IoError::from(ErrorKind::TimedOut)).with_peer(peer);
        assert!(e.to_string().contains("127.0.0.1:4321"));
        assert!(e.is_retryable(), "peer attribution keeps the class");
        // Non-transport errors pass through unchanged.
        let e = RuntimeError::DivisionByZero.with_peer(peer);
        assert_eq!(e, RuntimeError::DivisionByZero);
    }

    #[test]
    fn is_send_sync_error() {
        fn take(_: Box<dyn Error + Send + Sync>) {}
        take(Box::new(RuntimeError::NoChannel));
    }
}
