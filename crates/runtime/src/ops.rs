//! Scalar operator semantics, shared by the open-side interpreter and the
//! secure-side fragment executor so the two halves of a split program can
//! never drift apart arithmetically.
//!
//! Integers are 64-bit with *wrapping* overflow; `/` truncates toward zero
//! and `%` takes the sign of the dividend (Rust semantics); division or
//! remainder by zero is a [`RuntimeError::DivisionByZero`].

use crate::error::RuntimeError;
use crate::value::RtValue;
use hps_ir::{BinOp, Builtin, UnOp};

fn mismatch(expected: &'static str, v: &RtValue) -> RuntimeError {
    RuntimeError::TypeMismatch {
        expected,
        found: v.type_name(),
    }
}

/// Applies a binary operator to two scalar values.
///
/// # Errors
///
/// Returns [`RuntimeError::DivisionByZero`] for `x / 0` and `x % 0` on
/// integers, and [`RuntimeError::TypeMismatch`] for operand-type bugs.
pub fn binop(op: BinOp, a: &RtValue, b: &RtValue) -> Result<RtValue, RuntimeError> {
    use RtValue::{Bool, Float, Int};
    Ok(match (op, a, b) {
        (BinOp::Add, Int(x), Int(y)) => Int(x.wrapping_add(*y)),
        (BinOp::Sub, Int(x), Int(y)) => Int(x.wrapping_sub(*y)),
        (BinOp::Mul, Int(x), Int(y)) => Int(x.wrapping_mul(*y)),
        (BinOp::Div, Int(x), Int(y)) => {
            if *y == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            Int(x.wrapping_div(*y))
        }
        (BinOp::Rem, Int(x), Int(y)) => {
            if *y == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            Int(x.wrapping_rem(*y))
        }
        (BinOp::Add, Float(x), Float(y)) => Float(x + y),
        (BinOp::Sub, Float(x), Float(y)) => Float(x - y),
        (BinOp::Mul, Float(x), Float(y)) => Float(x * y),
        (BinOp::Div, Float(x), Float(y)) => Float(x / y),
        (BinOp::Eq, Int(x), Int(y)) => Bool(x == y),
        (BinOp::Ne, Int(x), Int(y)) => Bool(x != y),
        (BinOp::Lt, Int(x), Int(y)) => Bool(x < y),
        (BinOp::Le, Int(x), Int(y)) => Bool(x <= y),
        (BinOp::Gt, Int(x), Int(y)) => Bool(x > y),
        (BinOp::Ge, Int(x), Int(y)) => Bool(x >= y),
        (BinOp::Eq, Float(x), Float(y)) => Bool(x == y),
        (BinOp::Ne, Float(x), Float(y)) => Bool(x != y),
        (BinOp::Lt, Float(x), Float(y)) => Bool(x < y),
        (BinOp::Le, Float(x), Float(y)) => Bool(x <= y),
        (BinOp::Gt, Float(x), Float(y)) => Bool(x > y),
        (BinOp::Ge, Float(x), Float(y)) => Bool(x >= y),
        (BinOp::Eq, Bool(x), Bool(y)) => Bool(x == y),
        (BinOp::Ne, Bool(x), Bool(y)) => Bool(x != y),
        (BinOp::And, Bool(x), Bool(y)) => Bool(*x && *y),
        (BinOp::Or, Bool(x), Bool(y)) => Bool(*x || *y),
        (_, a, b) => {
            return Err(RuntimeError::TypeMismatch {
                expected: "matching scalar operands",
                found: if a.is_scalar() {
                    b.type_name()
                } else {
                    a.type_name()
                },
            })
        }
    })
}

/// Applies a unary operator.
///
/// # Errors
///
/// Returns [`RuntimeError::TypeMismatch`] for operand-type bugs.
pub fn unop(op: UnOp, a: &RtValue) -> Result<RtValue, RuntimeError> {
    use RtValue::{Bool, Float, Int};
    Ok(match (op, a) {
        (UnOp::Neg, Int(x)) => Int(x.wrapping_neg()),
        (UnOp::Neg, Float(x)) => Float(-x),
        (UnOp::Not, Bool(x)) => Bool(!x),
        (UnOp::Neg, v) => return Err(mismatch("int or float", v)),
        (UnOp::Not, v) => return Err(mismatch("bool", v)),
    })
}

/// Applies a scalar builtin (everything except `len`, which needs the
/// aggregate heap and is handled by the open-side interpreter).
///
/// # Errors
///
/// Returns [`RuntimeError::TypeMismatch`] for argument-type bugs and
/// [`RuntimeError::IllegalFragmentOp`] if asked to apply `len`.
pub fn builtin(b: Builtin, args: &[RtValue]) -> Result<RtValue, RuntimeError> {
    use RtValue::{Bool, Float, Int};
    Ok(match (b, args) {
        (Builtin::Exp, [Float(x)]) => Float(x.exp()),
        (Builtin::Log, [Float(x)]) => Float(x.ln()),
        (Builtin::Sqrt, [Float(x)]) => Float(x.sqrt()),
        (Builtin::Floor, [Float(x)]) => Float(x.floor()),
        (Builtin::Abs, [Int(x)]) => Int(x.wrapping_abs()),
        (Builtin::Abs, [Float(x)]) => Float(x.abs()),
        (Builtin::Min, [Int(x), Int(y)]) => Int(*x.min(y)),
        (Builtin::Max, [Int(x), Int(y)]) => Int(*x.max(y)),
        (Builtin::Min, [Float(x), Float(y)]) => Float(x.min(*y)),
        (Builtin::Max, [Float(x), Float(y)]) => Float(x.max(*y)),
        (Builtin::IntCast, [Int(x)]) => Int(*x),
        (Builtin::IntCast, [Float(x)]) => Int(*x as i64),
        (Builtin::IntCast, [Bool(x)]) => Int(i64::from(*x)),
        (Builtin::FloatCast, [Int(x)]) => Float(*x as f64),
        (Builtin::FloatCast, [Float(x)]) => Float(*x),
        (Builtin::Len, _) => return Err(RuntimeError::IllegalFragmentOp("len")),
        (_, args) => {
            return Err(RuntimeError::TypeMismatch {
                expected: "scalar builtin arguments",
                found: args.first().map_or("none", |v| v.type_name()),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arithmetic_wraps_and_traps_div0() {
        assert_eq!(
            binop(BinOp::Add, &RtValue::Int(i64::MAX), &RtValue::Int(1)).unwrap(),
            RtValue::Int(i64::MIN)
        );
        assert_eq!(
            binop(BinOp::Div, &RtValue::Int(7), &RtValue::Int(2)).unwrap(),
            RtValue::Int(3)
        );
        assert_eq!(
            binop(BinOp::Rem, &RtValue::Int(-7), &RtValue::Int(2)).unwrap(),
            RtValue::Int(-1)
        );
        assert_eq!(
            binop(BinOp::Div, &RtValue::Int(1), &RtValue::Int(0)),
            Err(RuntimeError::DivisionByZero)
        );
        assert_eq!(
            binop(BinOp::Rem, &RtValue::Int(1), &RtValue::Int(0)),
            Err(RuntimeError::DivisionByZero)
        );
    }

    #[test]
    fn float_division_by_zero_is_ieee() {
        let v = binop(BinOp::Div, &RtValue::Float(1.0), &RtValue::Float(0.0)).unwrap();
        assert_eq!(v, RtValue::Float(f64::INFINITY));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(
            binop(BinOp::Lt, &RtValue::Int(1), &RtValue::Int(2)).unwrap(),
            RtValue::Bool(true)
        );
        assert_eq!(
            binop(BinOp::And, &RtValue::Bool(true), &RtValue::Bool(false)).unwrap(),
            RtValue::Bool(false)
        );
        assert!(binop(BinOp::Lt, &RtValue::Int(1), &RtValue::Float(2.0)).is_err());
    }

    #[test]
    fn unops() {
        assert_eq!(unop(UnOp::Neg, &RtValue::Int(3)).unwrap(), RtValue::Int(-3));
        assert_eq!(
            unop(UnOp::Not, &RtValue::Bool(false)).unwrap(),
            RtValue::Bool(true)
        );
        assert!(unop(UnOp::Not, &RtValue::Int(1)).is_err());
    }

    #[test]
    fn builtins() {
        assert_eq!(
            builtin(Builtin::Abs, &[RtValue::Int(-4)]).unwrap(),
            RtValue::Int(4)
        );
        assert_eq!(
            builtin(Builtin::Max, &[RtValue::Int(1), RtValue::Int(5)]).unwrap(),
            RtValue::Int(5)
        );
        assert_eq!(
            builtin(Builtin::IntCast, &[RtValue::Float(2.9)]).unwrap(),
            RtValue::Int(2)
        );
        assert_eq!(
            builtin(Builtin::FloatCast, &[RtValue::Int(2)]).unwrap(),
            RtValue::Float(2.0)
        );
        assert_eq!(
            builtin(Builtin::IntCast, &[RtValue::Bool(true)]).unwrap(),
            RtValue::Int(1)
        );
        let e = builtin(Builtin::Exp, &[RtValue::Float(0.0)]).unwrap();
        assert_eq!(e, RtValue::Float(1.0));
        assert!(builtin(Builtin::Len, &[RtValue::Int(1)]).is_err());
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn extreme_integer_division_does_not_panic() {
        // i64::MIN / -1 overflows in plain division; wrapping semantics
        // must return i64::MIN (and the fragment engine inherits this).
        let v = binop(BinOp::Div, &RtValue::Int(i64::MIN), &RtValue::Int(-1)).unwrap();
        assert_eq!(v, RtValue::Int(i64::MIN));
        let v = binop(BinOp::Rem, &RtValue::Int(i64::MIN), &RtValue::Int(-1)).unwrap();
        assert_eq!(v, RtValue::Int(0));
        let v = unop(UnOp::Neg, &RtValue::Int(i64::MIN)).unwrap();
        assert_eq!(v, RtValue::Int(i64::MIN));
        let v = builtin(Builtin::Abs, &[RtValue::Int(i64::MIN)]).unwrap();
        assert_eq!(v, RtValue::Int(i64::MIN));
    }

    #[test]
    fn nan_comparisons_are_false() {
        let nan = RtValue::Float(f64::NAN);
        for op in [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq] {
            assert_eq!(binop(op, &nan, &nan).unwrap(), RtValue::Bool(false));
        }
        assert_eq!(binop(BinOp::Ne, &nan, &nan).unwrap(), RtValue::Bool(true));
    }

    #[test]
    fn float_casts_of_extremes() {
        assert_eq!(
            builtin(Builtin::IntCast, &[RtValue::Float(f64::INFINITY)]).unwrap(),
            RtValue::Int(i64::MAX)
        );
        assert_eq!(
            builtin(Builtin::IntCast, &[RtValue::Float(f64::NAN)]).unwrap(),
            RtValue::Int(0)
        );
    }
}
