//! Fragment bytecode compiler and virtual machine.
//!
//! The tree-walk executor in [`crate::fragment`] re-traverses the
//! [`Fragment`] AST on every call. This module lowers a fragment **once**
//! into a compact register bytecode ([`CompiledFragment`]) and executes it
//! with a flat dispatch loop ([`run_compiled`]) — the inner-interpreter
//! technique of classic Forth kernels. Lowering runs at split/handshake
//! time and the result is cached per server (and per shard) in a
//! [`VmCache`]; compiled code is plain `Send + Sync` data even though the
//! `RtValue` register file it operates on is not.
//!
//! # Lowering pipeline
//!
//! 1. **Constant folding** — pure-constant subtrees are evaluated at lower
//!    time with the *same* `ops` semantics the interpreter uses. A fold
//!    is only taken when the operator succeeds; subtrees that would trap
//!    at runtime (e.g. `1/0`) are lowered unfolded so the error still
//!    fires in evaluation order. Short-circuit operators fold only when
//!    the left side is a constant bool, preserving which operands the
//!    tree-walk would have evaluated.
//! 2. **Cost baking** — every cost-model charge the tree-walk makes is
//!    baked into `Instr::Cost` operands at lower time (including the
//!    charges of folded subtrees, so folding never changes the accounted
//!    cost). Adjacent charges in straight-line code are pre-summed.
//! 3. **Superinstructions** — the hot shapes get fused opcodes:
//!    load-const-op (constants ride inside `Operand::Const` instead of
//!    needing a load), compare-and-branch (`Instr::CmpBranch` for
//!    `if`/`while` over a comparison — the paper's predicate encodings
//!    live here as pre-resolved comparison opcodes), and accumulate
//!    (`Instr::Accum` for `x = x <op> e`).
//! 4. **Leak-point encoding** — illegal constructs (the splitter's leak
//!    points: aggregate access, calls, returns inside fragments) lower to
//!    `Instr::Illegal` carrying the exact diagnostic, emitted at the
//!    position evaluation would reach them, so the VM raises the same
//!    [`RuntimeError::IllegalFragmentOp`] at the same point.
//!
//! # Determinism rules
//!
//! The VM must be **observationally byte-identical** to
//! [`crate::fragment::run_fragment`]:
//!
//! * same returned value and same persistent hidden-var state;
//! * same total [`FragOutcome::cost`] on success (costs are charged
//!   before operand evaluation exactly where the tree-walk charges them;
//!   reordering within one statement is unobservable because errors
//!   discard cost);
//! * same step accounting — `Instr::Tick` is emitted once per statement
//!   and once per `while` iteration check, so `StepLimitExceeded` fires
//!   after the same number of statements;
//! * same [`RuntimeError`] variant for the first failing operation, in
//!   evaluation order.
//!
//! The differential proptest `tests/vm_differential.rs` pins this
//! contract on randomly generated fragments.

use crate::cost::CostModel;
use crate::error::RuntimeError;
use crate::fragment::{FragOutcome, FRAGMENT_STEP_LIMIT};
use crate::ops;
use crate::value::RtValue;
use hps_ir::{BinOp, Block, Builtin, Expr, Fragment, HiddenProgram, Place, StmtKind, UnOp, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Register index into the VM register file. Registers `0 .. n_vars`
/// mirror the component's persistent hidden variables, `n_vars ..
/// n_slots` the call parameters, and the rest are compiler temporaries.
type Reg = u16;

/// An instruction input: a register or an immediate scalar constant.
///
/// Immediates are the "load-const-op" superinstruction: a constant
/// operand never needs a separate load or a register.
#[derive(Clone, Copy, Debug)]
enum Operand {
    /// Read a register.
    Reg(Reg),
    /// An immediate constant (possibly produced by constant folding).
    Const(Value),
}

/// One bytecode instruction.
///
/// Control-flow targets are absolute instruction indices, resolved at
/// lower time.
#[derive(Clone, Debug)]
enum Instr {
    /// One statement (or `while`-iteration) of step budget.
    Tick,
    /// Charge pre-summed virtual cost units.
    Cost(u64),
    /// `regs[dst] = src`.
    Load { dst: Reg, src: Operand },
    /// `regs[dst] = unop(op, src)`.
    Un { op: UnOp, dst: Reg, src: Operand },
    /// `regs[dst] = binop(op, lhs, rhs)`.
    Bin {
        op: BinOp,
        dst: Reg,
        lhs: Operand,
        rhs: Operand,
    },
    /// Accumulate superinstruction: `regs[slot] = binop(op, regs[slot], rhs)`.
    Accum { op: BinOp, slot: Reg, rhs: Operand },
    /// `regs[dst] = builtin(b, args)`.
    Builtin {
        b: Builtin,
        dst: Reg,
        args: Box<[Operand]>,
    },
    /// Unconditional jump.
    Jump { target: u32 },
    /// Truthiness branch: jump to `target` when `cond` is `false`;
    /// non-bool raises the tree-walk's "bool condition" mismatch.
    BranchFalse { cond: Operand, target: u32 },
    /// Mirror of [`Instr::BranchFalse`] for `||` short-circuiting.
    BranchTrue { cond: Operand, target: u32 },
    /// Compare-and-branch superinstruction: jump to `target` when the
    /// comparison is `false`.
    CmpBranch {
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
        target: u32,
    },
    /// A leak point the fragment subset forbids; raises
    /// [`RuntimeError::IllegalFragmentOp`] when execution reaches it.
    Illegal(&'static str),
    /// Return the scalar in `src` (aggregates raise the tree-walk's
    /// "scalar return" mismatch) and write hidden vars back.
    Ret { src: Operand },
    /// Return the `any` placeholder (`Int(0)`) and write hidden vars back.
    RetAny,
}

/// A fragment lowered to register bytecode. Plain data: `Send + Sync`,
/// safe to share across shard threads even though `RtValue` is not.
#[derive(Clone, Debug)]
pub struct CompiledFragment {
    code: Vec<Instr>,
    n_regs: usize,
    n_vars: usize,
    n_params: usize,
    label: hps_ir::FragLabel,
    /// Marshalling charge per argument, baked from the cost model the
    /// fragment was compiled against.
    marshal_per_arg: u64,
}

impl CompiledFragment {
    /// Number of bytecode instructions (for diagnostics and benches).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the fragment lowered to no instructions (never happens:
    /// the epilogue always emits a return).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

/// Lowers a fragment into bytecode.
///
/// `n_vars` is the owning component's persistent hidden-variable count;
/// together with `fragment.params.len()` it fixes the slot layout, so the
/// compiled code is only valid for calls passing exactly that many vars
/// (checked by [`run_compiled`]).
pub fn compile_fragment(
    fragment: &Fragment,
    n_vars: usize,
    cost_model: &CostModel,
) -> CompiledFragment {
    let n_slots = n_vars + fragment.params.len();
    assert!(
        n_slots < usize::from(Reg::MAX),
        "fragment slot count exceeds bytecode register space"
    );
    let mut c = Compiler {
        code: Vec::new(),
        labels: Vec::new(),
        barrier: 0,
        n_slots,
        next_reg: n_slots as Reg,
        max_reg: n_slots as Reg,
        cost_model,
        loops: Vec::new(),
        epilogue: 0,
    };
    c.epilogue = c.new_label();
    c.block(&fragment.body);
    c.bind(c.epilogue);
    match &fragment.ret {
        Some(e) => {
            let mark = c.next_reg;
            let src = c.operand(e);
            c.emit(Instr::Ret { src });
            c.free_to(mark);
        }
        None => c.emit(Instr::RetAny),
    }
    let code = c.finish();
    CompiledFragment {
        code,
        n_regs: usize::from(c.max_reg),
        n_vars,
        n_params: fragment.params.len(),
        label: fragment.label,
        marshal_per_arg: cost_model.marshal_per_arg,
    }
}

/// A forward-reference label, resolved to an instruction index by
/// [`Compiler::finish`].
type Label = usize;

struct Compiler<'a> {
    code: Vec<Instr>,
    labels: Vec<Option<u32>>,
    /// Code length at the last label bind; cost charges never merge
    /// backwards across a bound label (a jump could land between them).
    barrier: usize,
    n_slots: usize,
    next_reg: Reg,
    max_reg: Reg,
    cost_model: &'a CostModel,
    /// Innermost-first stack of `(head, end)` labels for `break`/`continue`.
    loops: Vec<(Label, Label)>,
    /// Label of the return sequence; top-level `break`/`continue` jump here.
    epilogue: Label,
}

impl Compiler<'_> {
    fn emit(&mut self, i: Instr) {
        self.code.push(i);
    }

    fn new_label(&mut self) -> Label {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind(&mut self, l: Label) {
        debug_assert!(self.labels[l].is_none(), "label bound twice");
        self.labels[l] = Some(self.code.len() as u32);
        self.barrier = self.code.len();
    }

    /// Charges cost units, pre-summing into the previous charge when the
    /// two are adjacent in straight-line code.
    fn add_cost(&mut self, units: u64) {
        if units == 0 {
            return;
        }
        if self.code.len() > self.barrier {
            if let Some(Instr::Cost(prev)) = self.code.last_mut() {
                *prev += units;
                return;
            }
        }
        self.emit(Instr::Cost(units));
    }

    fn alloc(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .expect("fragment expression depth exceeds bytecode register space");
        self.max_reg = self.max_reg.max(self.next_reg);
        r
    }

    fn free_to(&mut self, mark: Reg) {
        self.next_reg = mark;
    }

    /// Resolves labels to instruction indices and returns the code.
    fn finish(&mut self) -> Vec<Instr> {
        let resolve = |l: &mut u32, labels: &[Option<u32>]| {
            *l = labels[*l as usize].expect("unbound bytecode label");
        };
        let mut code = std::mem::take(&mut self.code);
        for i in &mut code {
            match i {
                Instr::Jump { target }
                | Instr::BranchFalse { target, .. }
                | Instr::BranchTrue { target, .. }
                | Instr::CmpBranch { target, .. } => resolve(target, &self.labels),
                _ => {}
            }
        }
        code
    }

    /// A register or immediate for `e` when no code is needed: in-range
    /// locals map straight onto their slot register (expressions never
    /// mutate slots, so reading at use time equals reading at eval time),
    /// constants become immediates.
    fn simple(&self, e: &Expr) -> Option<Operand> {
        match e {
            Expr::Const(v) => Some(Operand::Const(*v)),
            Expr::Local(id) if id.index() < self.n_slots => Some(Operand::Reg(id.index() as Reg)),
            _ => None,
        }
    }

    /// Evaluates `e` into an operand, folding constants and reusing slot
    /// registers where possible; otherwise compiles into a fresh temp.
    fn operand(&mut self, e: &Expr) -> Operand {
        if let Some(op) = self.simple(e) {
            return op;
        }
        if let Some((v, cost)) = self.fold(e) {
            self.add_cost(cost);
            return Operand::Const(v);
        }
        let r = self.alloc();
        self.expr_into(e, r);
        Operand::Reg(r)
    }

    /// Constant-folds a pure-constant subtree, returning its value and the
    /// cost units the tree-walk would charge evaluating it. `None` when
    /// the subtree reads state, can fail at runtime, or short-circuits on
    /// a non-constant condition.
    fn fold(&self, e: &Expr) -> Option<(Value, u64)> {
        match e {
            Expr::Const(v) => Some((*v, 0)),
            Expr::Unary { op, arg } => {
                let (a, ca) = self.fold(arg)?;
                let v = ops::unop(*op, &RtValue::from_const(a)).ok()?;
                Some((v.to_const()?, self.cost_model.unop + ca))
            }
            Expr::Binary { op, lhs, rhs } if *op == BinOp::And || *op == BinOp::Or => {
                // Fold only when the left side decides the outcome the
                // same way the tree-walk would.
                let (a, ca) = self.fold(lhs)?;
                match (op, a) {
                    (BinOp::And, Value::Bool(false)) => {
                        Some((Value::Bool(false), self.cost_model.binop + ca))
                    }
                    (BinOp::Or, Value::Bool(true)) => {
                        Some((Value::Bool(true), self.cost_model.binop + ca))
                    }
                    (_, Value::Bool(_)) => {
                        let (b, cb) = self.fold(rhs)?;
                        Some((b, self.cost_model.binop + ca + cb))
                    }
                    _ => None, // non-bool condition traps at runtime
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let (a, ca) = self.fold(lhs)?;
                let (b, cb) = self.fold(rhs)?;
                let v = ops::binop(*op, &RtValue::from_const(a), &RtValue::from_const(b)).ok()?;
                Some((v.to_const()?, self.cost_model.binop + ca + cb))
            }
            Expr::BuiltinCall { builtin, args } => {
                let mut cost = self.cost_model.builtin_cost(*builtin);
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let (v, c) = self.fold(a)?;
                    cost += c;
                    vals.push(RtValue::from_const(v));
                }
                let v = ops::builtin(*builtin, &vals).ok()?;
                Some((v.to_const()?, cost))
            }
            _ => None,
        }
    }

    /// Compiles `e` so its value lands in `dst`, charging exactly the
    /// costs the tree-walk charges and raising errors in evaluation order.
    fn expr_into(&mut self, e: &Expr, dst: Reg) {
        if let Some(src) = self.simple(e) {
            self.emit(Instr::Load { dst, src });
            return;
        }
        if let Some((v, cost)) = self.fold(e) {
            self.add_cost(cost);
            self.emit(Instr::Load {
                dst,
                src: Operand::Const(v),
            });
            return;
        }
        match e {
            // `simple` handled in-range locals and constants above.
            Expr::Const(_) => unreachable!("constants are simple operands"),
            Expr::Local(_) => self.emit(Instr::Illegal("out-of-range hidden slot")),
            Expr::Unary { op, arg } => {
                self.add_cost(self.cost_model.unop);
                let mark = self.next_reg;
                let src = self.operand(arg);
                self.emit(Instr::Un { op: *op, dst, src });
                self.free_to(mark);
            }
            Expr::Binary { op, lhs, rhs } if *op == BinOp::And => {
                self.add_cost(self.cost_model.binop);
                let mark = self.next_reg;
                let cond = self.operand(lhs);
                self.free_to(mark);
                let l_false = self.new_label();
                let l_end = self.new_label();
                self.emit(Instr::BranchFalse {
                    cond,
                    target: l_false as u32,
                });
                self.expr_into(rhs, dst);
                self.emit(Instr::Jump {
                    target: l_end as u32,
                });
                self.bind(l_false);
                self.emit(Instr::Load {
                    dst,
                    src: Operand::Const(Value::Bool(false)),
                });
                self.bind(l_end);
            }
            Expr::Binary { op, lhs, rhs } if *op == BinOp::Or => {
                self.add_cost(self.cost_model.binop);
                let mark = self.next_reg;
                let cond = self.operand(lhs);
                self.free_to(mark);
                let l_true = self.new_label();
                let l_end = self.new_label();
                self.emit(Instr::BranchTrue {
                    cond,
                    target: l_true as u32,
                });
                self.expr_into(rhs, dst);
                self.emit(Instr::Jump {
                    target: l_end as u32,
                });
                self.bind(l_true);
                self.emit(Instr::Load {
                    dst,
                    src: Operand::Const(Value::Bool(true)),
                });
                self.bind(l_end);
            }
            Expr::Binary { op, lhs, rhs } => {
                self.add_cost(self.cost_model.binop);
                let mark = self.next_reg;
                let a = self.operand(lhs);
                let b = self.operand(rhs);
                self.emit(Instr::Bin {
                    op: *op,
                    dst,
                    lhs: a,
                    rhs: b,
                });
                self.free_to(mark);
            }
            Expr::BuiltinCall { builtin, args } => {
                self.add_cost(self.cost_model.builtin_cost(*builtin));
                let mark = self.next_reg;
                let ops_args: Vec<Operand> = args.iter().map(|a| self.operand(a)).collect();
                self.emit(Instr::Builtin {
                    b: *builtin,
                    dst,
                    args: ops_args.into_boxed_slice(),
                });
                self.free_to(mark);
            }
            Expr::Global(_) => self.emit(Instr::Illegal("global access in fragment")),
            Expr::Index { .. } => self.emit(Instr::Illegal("array access in fragment")),
            Expr::FieldGet { .. } => self.emit(Instr::Illegal("field access in fragment")),
            Expr::Call { .. } => self.emit(Instr::Illegal("call in fragment")),
            Expr::NewArray { .. } | Expr::NewObject(_) => {
                self.emit(Instr::Illegal("allocation in fragment"))
            }
        }
    }

    /// Compiles a condition so control falls through when it is true and
    /// jumps to `target` when false, fusing comparisons into
    /// [`Instr::CmpBranch`].
    fn branch_unless(&mut self, cond: &Expr, target: Label) {
        if let Expr::Binary { op, lhs, rhs } = cond {
            if matches!(
                op,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) {
                self.add_cost(self.cost_model.binop);
                let mark = self.next_reg;
                let a = self.operand(lhs);
                let b = self.operand(rhs);
                self.emit(Instr::CmpBranch {
                    op: *op,
                    lhs: a,
                    rhs: b,
                    target: target as u32,
                });
                self.free_to(mark);
                return;
            }
        }
        let mark = self.next_reg;
        let c = self.operand(cond);
        self.emit(Instr::BranchFalse {
            cond: c,
            target: target as u32,
        });
        self.free_to(mark);
    }

    /// Recognises `x = x <op> e` and fuses it into [`Instr::Accum`].
    fn try_accum(&mut self, place: &Place, value: &Expr) -> bool {
        let slot = match place {
            Place::Local(id) if id.index() < self.n_slots => id.index() as Reg,
            _ => return false,
        };
        let (op, lhs, rhs) = match value {
            Expr::Binary { op, lhs, rhs } if *op != BinOp::And && *op != BinOp::Or => {
                (*op, lhs, rhs)
            }
            _ => return false,
        };
        match lhs.as_ref() {
            Expr::Local(id) if id.index() == usize::from(slot) => {}
            _ => return false,
        }
        self.add_cost(self.cost_model.binop + self.cost_model.assign);
        let mark = self.next_reg;
        let rhs = self.operand(rhs);
        self.emit(Instr::Accum { op, slot, rhs });
        self.free_to(mark);
        true
    }

    fn block(&mut self, b: &Block) {
        for stmt in &b.stmts {
            self.emit(Instr::Tick);
            match &stmt.kind {
                StmtKind::Assign { place, value } => {
                    if self.try_accum(place, value) {
                        continue;
                    }
                    let mark = self.next_reg;
                    let v = self.operand(value);
                    self.add_cost(self.cost_model.assign);
                    match place {
                        Place::Local(id) if id.index() < self.n_slots => {
                            self.emit(Instr::Load {
                                dst: id.index() as Reg,
                                src: v,
                            });
                        }
                        Place::Local(_) => {
                            self.emit(Instr::Illegal("out-of-range hidden slot"));
                        }
                        _ => self.emit(Instr::Illegal("aggregate store in fragment")),
                    }
                    self.free_to(mark);
                }
                StmtKind::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    self.add_cost(self.cost_model.branch);
                    let l_else = self.new_label();
                    let l_end = self.new_label();
                    self.branch_unless(cond, l_else);
                    self.block(then_blk);
                    if !else_blk.is_empty() {
                        self.emit(Instr::Jump {
                            target: l_end as u32,
                        });
                    }
                    self.bind(l_else);
                    self.block(else_blk);
                    self.bind(l_end);
                }
                StmtKind::While { cond, body } => {
                    let l_head = self.new_label();
                    let l_end = self.new_label();
                    self.bind(l_head);
                    self.emit(Instr::Tick);
                    self.add_cost(self.cost_model.branch);
                    self.branch_unless(cond, l_end);
                    self.loops.push((l_head, l_end));
                    self.block(body);
                    self.loops.pop();
                    self.emit(Instr::Jump {
                        target: l_head as u32,
                    });
                    self.bind(l_end);
                }
                StmtKind::Break => {
                    let target = self.loops.last().map_or(self.epilogue, |&(_, end)| end);
                    self.emit(Instr::Jump {
                        target: target as u32,
                    });
                }
                StmtKind::Continue => {
                    let target = self.loops.last().map_or(self.epilogue, |&(head, _)| head);
                    self.emit(Instr::Jump {
                        target: target as u32,
                    });
                }
                StmtKind::Nop => {}
                StmtKind::Return(_) => self.emit(Instr::Illegal("return in fragment")),
                StmtKind::Print(_) => self.emit(Instr::Illegal("print in fragment")),
                StmtKind::ExprStmt(_) => self.emit(Instr::Illegal("call in fragment")),
                StmtKind::HiddenCall { .. } => self.emit(Instr::Illegal("nested hidden call")),
            }
        }
    }
}

/// Reads an operand from the register file.
#[inline]
fn read(regs: &[RtValue], o: &Operand) -> RtValue {
    match o {
        Operand::Const(v) => RtValue::from_const(*v),
        Operand::Reg(r) => regs[usize::from(*r)].clone(),
    }
}

/// Executes compiled bytecode against a component's hidden state, exactly
/// like [`crate::fragment::run_fragment`] executes the AST.
///
/// # Errors
///
/// The same errors, at the same evaluation points, as the tree-walk.
pub fn run_compiled(
    compiled: &CompiledFragment,
    vars: &mut [RtValue],
    args: &[Value],
) -> Result<FragOutcome, RuntimeError> {
    run_compiled_with_limit(compiled, vars, args, FRAGMENT_STEP_LIMIT)
}

/// [`run_compiled`] with an explicit step limit, mirroring
/// [`crate::fragment::run_fragment_with_limit`] for differential tests.
///
/// # Errors
///
/// As [`run_compiled`], with `StepLimitExceeded` carrying `limit`.
pub fn run_compiled_with_limit(
    compiled: &CompiledFragment,
    vars: &mut [RtValue],
    args: &[Value],
    limit: u64,
) -> Result<FragOutcome, RuntimeError> {
    if args.len() != compiled.n_params {
        return Err(RuntimeError::Channel(format!(
            "fragment {} expects {} args, got {}",
            compiled.label,
            compiled.n_params,
            args.len()
        )));
    }
    if vars.len() != compiled.n_vars {
        return Err(RuntimeError::Channel(format!(
            "fragment {} compiled for {} hidden vars, got {}",
            compiled.label,
            compiled.n_vars,
            vars.len()
        )));
    }
    let mut regs: Vec<RtValue> = Vec::with_capacity(compiled.n_regs);
    regs.extend(vars.iter().cloned());
    regs.extend(args.iter().map(|&v| RtValue::from_const(v)));
    regs.resize(compiled.n_regs, RtValue::Uninit);

    let mut cost = compiled.marshal_per_arg * args.len() as u64;
    let mut steps: u64 = 0;
    let mut pc: usize = 0;
    let code = compiled.code.as_slice();
    // The dispatch loop: pc is advanced before dispatch so branches
    // overwrite it; the enum match lowers to a single indirect jump.
    loop {
        let instr = &code[pc];
        pc += 1;
        match instr {
            Instr::Tick => {
                steps += 1;
                if steps > limit {
                    return Err(RuntimeError::StepLimitExceeded { limit });
                }
            }
            Instr::Cost(units) => cost += units,
            Instr::Load { dst, src } => regs[usize::from(*dst)] = read(&regs, src),
            Instr::Un { op, dst, src } => {
                let a = read(&regs, src);
                regs[usize::from(*dst)] = ops::unop(*op, &a)?;
            }
            Instr::Bin { op, dst, lhs, rhs } => {
                let a = read(&regs, lhs);
                let b = read(&regs, rhs);
                regs[usize::from(*dst)] = ops::binop(*op, &a, &b)?;
            }
            Instr::Accum { op, slot, rhs } => {
                let b = read(&regs, rhs);
                let v = ops::binop(*op, &regs[usize::from(*slot)], &b)?;
                regs[usize::from(*slot)] = v;
            }
            Instr::Builtin { b, dst, args } => {
                let vals: Vec<RtValue> = args.iter().map(|o| read(&regs, o)).collect();
                regs[usize::from(*dst)] = ops::builtin(*b, &vals)?;
            }
            Instr::Jump { target } => pc = *target as usize,
            Instr::BranchFalse { cond, target } => match read(&regs, cond) {
                RtValue::Bool(true) => {}
                RtValue::Bool(false) => pc = *target as usize,
                v => {
                    return Err(RuntimeError::TypeMismatch {
                        expected: "bool condition",
                        found: v.type_name(),
                    })
                }
            },
            Instr::BranchTrue { cond, target } => match read(&regs, cond) {
                RtValue::Bool(true) => pc = *target as usize,
                RtValue::Bool(false) => {}
                v => {
                    return Err(RuntimeError::TypeMismatch {
                        expected: "bool condition",
                        found: v.type_name(),
                    })
                }
            },
            Instr::CmpBranch {
                op,
                lhs,
                rhs,
                target,
            } => {
                let a = read(&regs, lhs);
                let b = read(&regs, rhs);
                match ops::binop(*op, &a, &b)? {
                    RtValue::Bool(true) => {}
                    RtValue::Bool(false) => pc = *target as usize,
                    v => {
                        // Comparisons only return bools; kept for parity
                        // with the tree-walk's truthiness check.
                        return Err(RuntimeError::TypeMismatch {
                            expected: "bool condition",
                            found: v.type_name(),
                        });
                    }
                }
            }
            Instr::Illegal(what) => return Err(RuntimeError::IllegalFragmentOp(what)),
            Instr::Ret { src } => {
                let v = read(&regs, src);
                let value = v.to_const().ok_or(RuntimeError::TypeMismatch {
                    expected: "scalar return",
                    found: "aggregate",
                })?;
                vars.clone_from_slice(&regs[..compiled.n_vars]);
                return Ok(FragOutcome { value, cost });
            }
            Instr::RetAny => {
                vars.clone_from_slice(&regs[..compiled.n_vars]);
                return Ok(FragOutcome {
                    value: Value::Int(0),
                    cost,
                });
            }
        }
    }
}

/// Reads `HPS_FRAGMENT_VM`: the VM is on by default, `0`/`false`/`off`/
/// `no` disable it (used by `ExecConfig`, `SecureServer` and
/// `SessionServer` defaults; `hps run/serve --no-vm` overrides directly).
pub fn vm_enabled_by_default() -> bool {
    match std::env::var("HPS_FRAGMENT_VM") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "0" | "false" | "off" | "no"
        ),
        Err(_) => true,
    }
}

/// Compile-once cache of fragment bytecode, keyed by `(component index,
/// fragment position)`, sized for one [`HiddenProgram`] and one cost
/// model.
///
/// Compiled code is immutable plain data, so one cache can be shared by
/// every session of a shard (`Arc<VmCache>`); the counters are relaxed
/// atomics so stats snapshots can read them from other threads.
#[derive(Debug)]
pub struct VmCache {
    slots: Vec<Vec<OnceLock<CompiledFragment>>>,
    compiles: AtomicU64,
    hits: AtomicU64,
    compile_nanos: AtomicU64,
}

impl VmCache {
    /// An empty cache sized for `hidden`'s components and fragments.
    pub fn for_program(hidden: &HiddenProgram) -> VmCache {
        VmCache {
            slots: hidden
                .components
                .iter()
                .map(|c| c.fragments.iter().map(|_| OnceLock::new()).collect())
                .collect(),
            compiles: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            compile_nanos: AtomicU64::new(0),
        }
    }

    /// Fragments compiled so far (each fragment compiles at most once).
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Executions served from already-compiled bytecode.
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Wall-clock nanoseconds spent compiling (never part of deterministic
    /// snapshots; surfaced via `ShardStats` for load attribution).
    pub fn compile_nanos(&self) -> u64 {
        self.compile_nanos.load(Ordering::Relaxed)
    }

    /// Returns the compiled code for the fragment at `(component,
    /// position)`, lowering it on first use; the flag is `true` when this
    /// call performed the compile. `None` when the cache was built for a
    /// different program shape.
    pub fn get_or_compile(
        &self,
        component: usize,
        position: usize,
        fragment: &Fragment,
        n_vars: usize,
        cost_model: &CostModel,
    ) -> Option<(&CompiledFragment, bool)> {
        let cell = self.slots.get(component)?.get(position)?;
        let mut fresh = false;
        let code = cell.get_or_init(|| {
            let t0 = std::time::Instant::now();
            let compiled = compile_fragment(fragment, n_vars, cost_model);
            self.compile_nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.compiles.fetch_add(1, Ordering::Relaxed);
            fresh = true;
            compiled
        });
        if !fresh {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        Some((code, fresh))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{run_fragment, run_fragment_with_limit};
    use hps_ir::{FragLabel, LocalId, Stmt, Ty};

    fn frag(body: Vec<Stmt>, params: usize, ret: Option<Expr>) -> Fragment {
        Fragment {
            label: FragLabel::new(0),
            params: (0..params).map(|i| (format!("p{i}"), Ty::Int)).collect(),
            body: Block::of(body),
            ret,
        }
    }

    /// Runs both engines and asserts identical outcome, state and error.
    fn assert_parity(f: &Fragment, vars: &[RtValue], args: &[Value]) {
        let cm = CostModel::new();
        let mut tree_vars = vars.to_vec();
        let mut vm_vars = vars.to_vec();
        let tree = run_fragment(f, &mut tree_vars, args, &cm);
        let compiled = compile_fragment(f, vars.len(), &cm);
        let vm = run_compiled(&compiled, &mut vm_vars, args);
        assert_eq!(format!("{tree:?}"), format!("{vm:?}"), "outcome diverged");
        assert_eq!(tree_vars, vm_vars, "hidden state diverged");
    }

    #[test]
    fn loop_accumulator_matches_tree_walk() {
        // vars=[sum, i]; L0(z): while (i < z) { sum = sum + i; i = i + 1 } ret sum
        let sum = LocalId::new(0);
        let i = LocalId::new(1);
        let z = LocalId::new(2);
        let body = vec![Stmt::new(StmtKind::While {
            cond: Expr::binary(BinOp::Lt, Expr::local(i), Expr::local(z)),
            body: Block::of(vec![
                Stmt::new(StmtKind::Assign {
                    place: Place::Local(sum),
                    value: Expr::binary(BinOp::Add, Expr::local(sum), Expr::local(i)),
                }),
                Stmt::new(StmtKind::Assign {
                    place: Place::Local(i),
                    value: Expr::binary(BinOp::Add, Expr::local(i), Expr::int(1)),
                }),
            ]),
        })];
        let f = frag(body, 1, Some(Expr::local(sum)));
        assert_parity(&f, &[RtValue::Int(0), RtValue::Int(3)], &[Value::Int(9)]);
    }

    #[test]
    fn constant_folding_preserves_cost() {
        // ret (2 + 3) * p0 — the fold must still charge both binop costs.
        let f = frag(
            vec![],
            1,
            Some(Expr::binary(
                BinOp::Mul,
                Expr::binary(BinOp::Add, Expr::int(2), Expr::int(3)),
                Expr::local(LocalId::new(0)),
            )),
        );
        assert_parity(&f, &[], &[Value::Int(7)]);
        let cm = CostModel::new();
        let compiled = compile_fragment(&f, 0, &cm);
        let out = run_compiled(&compiled, &mut [], &[Value::Int(7)]).unwrap();
        assert_eq!(out.value, Value::Int(35));
        assert_eq!(out.cost, cm.marshal_per_arg + 2 * cm.binop);
    }

    #[test]
    fn folding_never_hides_runtime_traps() {
        // ret 1 / 0 — must stay a runtime DivisionByZero, not a compile
        // failure or a folded constant.
        let f = frag(
            vec![],
            0,
            Some(Expr::binary(BinOp::Div, Expr::int(1), Expr::int(0))),
        );
        assert_parity(&f, &[], &[]);
        let compiled = compile_fragment(&f, 0, &CostModel::new());
        assert_eq!(
            run_compiled(&compiled, &mut [], &[]),
            Err(RuntimeError::DivisionByZero)
        );
    }

    #[test]
    fn short_circuit_matches_tree_walk() {
        // (false && (1/0 == 0)) || true
        let f = frag(
            vec![],
            0,
            Some(Expr::binary(
                BinOp::Or,
                Expr::binary(
                    BinOp::And,
                    Expr::bool(false),
                    Expr::binary(
                        BinOp::Eq,
                        Expr::binary(BinOp::Div, Expr::int(1), Expr::int(0)),
                        Expr::int(0),
                    ),
                ),
                Expr::bool(true),
            )),
        );
        assert_parity(&f, &[], &[]);
        let compiled = compile_fragment(&f, 0, &CostModel::new());
        let out = run_compiled(&compiled, &mut [], &[]).unwrap();
        assert_eq!(out.value, Value::Bool(true));
    }

    #[test]
    fn step_limit_fires_at_same_count() {
        // while (true) {} against a tiny limit: both engines must fail
        // with the same limit after the same number of ticks.
        let f = frag(
            vec![Stmt::new(StmtKind::While {
                cond: Expr::bool(true),
                body: Block::of(vec![Stmt::new(StmtKind::Nop)]),
            })],
            0,
            None,
        );
        let cm = CostModel::new();
        for limit in [1, 2, 3, 10, 101] {
            let tree = run_fragment_with_limit(&f, &mut [], &[], &cm, limit);
            let compiled = compile_fragment(&f, 0, &cm);
            let vm = run_compiled_with_limit(&compiled, &mut [], &[], limit);
            assert_eq!(tree, vm);
            assert_eq!(tree, Err(RuntimeError::StepLimitExceeded { limit }));
        }
    }

    #[test]
    fn break_continue_and_nested_ifs() {
        // vars=[n, out]; while (true) { n = n - 1; if (n == 2) { continue; }
        // if (n <= 0) { break; } out = out + n; } ret out
        let n = LocalId::new(0);
        let out = LocalId::new(1);
        let body = vec![Stmt::new(StmtKind::While {
            cond: Expr::bool(true),
            body: Block::of(vec![
                Stmt::new(StmtKind::Assign {
                    place: Place::Local(n),
                    value: Expr::binary(BinOp::Sub, Expr::local(n), Expr::int(1)),
                }),
                Stmt::new(StmtKind::If {
                    cond: Expr::binary(BinOp::Eq, Expr::local(n), Expr::int(2)),
                    then_blk: Block::of(vec![Stmt::new(StmtKind::Continue)]),
                    else_blk: Block::new(),
                }),
                Stmt::new(StmtKind::If {
                    cond: Expr::binary(BinOp::Le, Expr::local(n), Expr::int(0)),
                    then_blk: Block::of(vec![Stmt::new(StmtKind::Break)]),
                    else_blk: Block::new(),
                }),
                Stmt::new(StmtKind::Assign {
                    place: Place::Local(out),
                    value: Expr::binary(BinOp::Add, Expr::local(out), Expr::local(n)),
                }),
            ]),
        })];
        let f = frag(body, 0, Some(Expr::local(out)));
        assert_parity(&f, &[RtValue::Int(6), RtValue::Int(0)], &[]);
    }

    #[test]
    fn top_level_break_skips_rest_of_body() {
        let x = LocalId::new(0);
        let body = vec![
            Stmt::new(StmtKind::Assign {
                place: Place::Local(x),
                value: Expr::int(1),
            }),
            Stmt::new(StmtKind::Break),
            Stmt::new(StmtKind::Assign {
                place: Place::Local(x),
                value: Expr::int(99),
            }),
        ];
        let f = frag(body, 0, Some(Expr::local(x)));
        assert_parity(&f, &[RtValue::Int(0)], &[]);
        let compiled = compile_fragment(&f, 1, &CostModel::new());
        let mut vars = vec![RtValue::Int(0)];
        let out = run_compiled(&compiled, &mut vars, &[]).unwrap();
        assert_eq!(out.value, Value::Int(1));
    }

    #[test]
    fn illegal_ops_surface_identically() {
        for (stmt, _what) in [
            (Stmt::new(StmtKind::Return(None)), "return in fragment"),
            (
                Stmt::new(StmtKind::Print(Expr::int(1))),
                "print in fragment",
            ),
        ] {
            let f = frag(vec![stmt], 0, None);
            assert_parity(&f, &[], &[]);
        }
        // Out-of-range slot store, reached only when executed.
        let guarded = frag(
            vec![Stmt::new(StmtKind::If {
                cond: Expr::bool(false),
                then_blk: Block::of(vec![Stmt::new(StmtKind::Assign {
                    place: Place::Local(LocalId::new(40)),
                    value: Expr::int(1),
                })]),
                else_blk: Block::new(),
            })],
            0,
            None,
        );
        assert_parity(&guarded, &[], &[]);
        let compiled = compile_fragment(&guarded, 0, &CostModel::new());
        assert!(run_compiled(&compiled, &mut [], &[]).is_ok());
    }

    #[test]
    fn arg_count_mismatch_is_channel_error() {
        let f = frag(vec![], 2, None);
        assert_parity(&f, &[], &[Value::Int(1)]);
        let compiled = compile_fragment(&f, 0, &CostModel::new());
        let err = run_compiled(&compiled, &mut [], &[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, RuntimeError::Channel(_)));
    }

    #[test]
    fn param_writes_do_not_leak_back() {
        let f = frag(
            vec![Stmt::new(StmtKind::Assign {
                place: Place::Local(LocalId::new(1)),
                value: Expr::int(99),
            })],
            1,
            Some(Expr::local(LocalId::new(1))),
        );
        assert_parity(&f, &[RtValue::Int(7)], &[Value::Int(1)]);
    }

    #[test]
    fn compiled_code_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledFragment>();
        assert_send_sync::<VmCache>();
    }

    #[test]
    fn cache_compiles_once_and_counts_hits() {
        let f = frag(vec![], 0, Some(Expr::int(7)));
        let hidden = HiddenProgram {
            components: vec![hps_ir::HiddenComponent {
                id: hps_ir::ComponentId::new(0),
                kind: hps_ir::ComponentKind::Function {
                    func_name: "f".into(),
                },
                vars: vec![],
                fragments: vec![f.clone()],
            }],
        };
        let cache = VmCache::for_program(&hidden);
        let cm = CostModel::new();
        let (_, fresh) = cache.get_or_compile(0, 0, &f, 0, &cm).unwrap();
        assert!(fresh);
        let (_, fresh) = cache.get_or_compile(0, 0, &f, 0, &cm).unwrap();
        assert!(!fresh);
        assert_eq!(cache.compiles(), 1);
        assert_eq!(cache.cache_hits(), 1);
        assert!(cache.get_or_compile(3, 0, &f, 0, &cm).is_none());
    }

    #[test]
    fn superinstructions_preserve_cost_accounting() {
        // x = x + 1 lowers to Accum; if (x < 10) lowers to CmpBranch —
        // totals must match the tree-walk exactly.
        let x = LocalId::new(0);
        let f = frag(
            vec![
                Stmt::new(StmtKind::Assign {
                    place: Place::Local(x),
                    value: Expr::binary(BinOp::Add, Expr::local(x), Expr::int(1)),
                }),
                Stmt::new(StmtKind::If {
                    cond: Expr::binary(BinOp::Lt, Expr::local(x), Expr::int(10)),
                    then_blk: Block::of(vec![Stmt::new(StmtKind::Assign {
                        place: Place::Local(x),
                        value: Expr::binary(BinOp::Mul, Expr::local(x), Expr::int(2)),
                    })]),
                    else_blk: Block::new(),
                }),
            ],
            0,
            Some(Expr::local(x)),
        );
        for start in [-5i64, 0, 9, 10, 50] {
            assert_parity(&f, &[RtValue::Int(start)], &[]);
        }
    }
}
