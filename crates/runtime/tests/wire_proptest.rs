//! Property-based tests of the wire protocol: arbitrary requests/responses
//! survive encode→frame→unframe→decode, and the decoder never panics on
//! arbitrary bytes.

use hps_ir::{ComponentId, FragLabel, Value};
use hps_runtime::wire::{read_frame, write_frame, Request, Response};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u64>(),
            any::<u32>(),
            prop::collection::vec(value_strategy(), 0..20)
        )
            .prop_map(|(c, key, l, args)| Request::Call {
                component: ComponentId(c),
                key,
                label: FragLabel(l),
                args,
            }),
        (any::<u32>(), any::<u64>()).prop_map(|(c, key)| Request::Release {
            component: ComponentId(c),
            key,
        }),
        Just(Request::Shutdown),
    ]
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        (value_strategy(), any::<u64>())
            .prop_map(|(value, server_cost)| Response::Reply { value, server_cost }),
        ".{0,120}".prop_map(Response::Error),
    ]
}

/// Bit-level equality for values (NaN-safe).
fn value_bits(v: &Value) -> (u8, u64) {
    match v {
        Value::Int(i) => (0, *i as u64),
        Value::Float(f) => (1, f.to_bits()),
        Value::Bool(b) => (2, u64::from(*b)),
    }
}

proptest! {
    #[test]
    fn request_round_trips(req in request_strategy()) {
        let bytes = req.encode();
        let decoded = Request::decode(&bytes).expect("valid encoding decodes");
        match (&req, &decoded) {
            (
                Request::Call { component: c1, key: k1, label: l1, args: a1 },
                Request::Call { component: c2, key: k2, label: l2, args: a2 },
            ) => {
                prop_assert_eq!(c1, c2);
                prop_assert_eq!(k1, k2);
                prop_assert_eq!(l1, l2);
                prop_assert_eq!(a1.len(), a2.len());
                for (x, y) in a1.iter().zip(a2) {
                    prop_assert_eq!(value_bits(x), value_bits(y));
                }
            }
            (a, b) => prop_assert_eq!(a, b),
        }
    }

    #[test]
    fn response_round_trips(resp in response_strategy()) {
        let bytes = resp.encode();
        let decoded = Response::decode(&bytes).expect("valid encoding decodes");
        prop_assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn frames_round_trip(payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..8)) {
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).expect("write");
        }
        let mut cursor = std::io::Cursor::new(buf);
        for p in &payloads {
            let got = read_frame(&mut cursor).expect("read").expect("frame present");
            prop_assert_eq!(&got, p);
        }
        prop_assert_eq!(read_frame(&mut cursor).expect("read"), None);
    }

    #[test]
    fn truncated_frames_error_not_panic(req in request_strategy(), cut in 0usize..64) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &req.encode()).expect("write");
        if cut < buf.len() && cut > 0 {
            buf.truncate(cut);
            let mut cursor = std::io::Cursor::new(buf);
            // Either a clean None (cut before the length prefix finished the
            // frame boundary check) or an error; never a panic or a bogus Ok.
            if let Ok(Some(payload)) = read_frame(&mut cursor) {
                // Only acceptable if the cut kept the whole frame.
                prop_assert_eq!(payload, req.encode());
            }
        }
    }
}
