//! Property-based tests of the wire protocol: arbitrary requests/responses
//! survive encode→frame→unframe→decode, and the decoder never panics on
//! arbitrary bytes.

use hps_ir::{ComponentId, FragLabel, Value};
use hps_runtime::wire::{read_frame, write_frame, Request, Response};
use hps_runtime::PendingCall;
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn pending_call_strategy() -> impl Strategy<Value = PendingCall> {
    (
        any::<u32>(),
        any::<u64>(),
        any::<u32>(),
        prop::collection::vec(value_strategy(), 0..8),
    )
        .prop_map(|(c, key, l, args)| PendingCall {
            component: ComponentId(c),
            key,
            label: FragLabel(l),
            args,
        })
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u64>(),
            any::<u32>(),
            prop::collection::vec(value_strategy(), 0..20)
        )
            .prop_map(|(c, key, l, args)| Request::Call {
                component: ComponentId(c),
                key,
                label: FragLabel(l),
                args,
            }),
        prop::collection::vec(pending_call_strategy(), 0..6).prop_map(Request::Batch),
        (any::<u32>(), any::<u64>()).prop_map(|(c, key)| Request::Release {
            component: ComponentId(c),
            key,
        }),
        (any::<u8>(), any::<u64>())
            .prop_map(|(version, session)| Request::Hello { version, session }),
        (any::<u64>(), pending_call_strategy())
            .prop_map(|(seq, call)| Request::SeqCall { seq, call }),
        (
            any::<u64>(),
            prop::collection::vec(pending_call_strategy(), 0..6)
        )
            .prop_map(|(seq, calls)| Request::SeqBatch { seq, calls }),
        Just(Request::Shutdown),
    ]
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        (value_strategy(), any::<u64>())
            .prop_map(|(value, server_cost)| Response::Reply { value, server_cost }),
        prop::collection::vec(
            (value_strategy(), any::<u64>())
                .prop_map(|(value, server_cost)| { hps_runtime::CallReply { value, server_cost } }),
            0..6
        )
        .prop_map(Response::Batch),
        (any::<u8>(), any::<u64>(), any::<u64>()).prop_map(|(version, session, next_seq)| {
            Response::HelloAck {
                version,
                session,
                next_seq,
            }
        }),
        ".{0,120}".prop_map(Response::Error),
    ]
}

/// Bit-level equality for values (NaN-safe).
fn value_bits(v: &Value) -> (u8, u64) {
    match v {
        Value::Int(i) => (0, *i as u64),
        Value::Float(f) => (1, f.to_bits()),
        Value::Bool(b) => (2, u64::from(*b)),
    }
}

proptest! {
    #[test]
    fn request_round_trips(req in request_strategy()) {
        let bytes = req.encode();
        let decoded = Request::decode(&bytes).expect("valid encoding decodes");
        // Re-encoding must reproduce the bytes exactly (bit-level, so
        // NaN-carrying floats round-trip too).
        prop_assert_eq!(decoded.encode(), bytes);
        // And for the common case, structural equality must hold as well.
        if let (
            Request::Call { component: c1, key: k1, label: l1, args: a1 },
            Request::Call { component: c2, key: k2, label: l2, args: a2 },
        ) = (&req, &decoded) {
            prop_assert_eq!(c1, c2);
            prop_assert_eq!(k1, k2);
            prop_assert_eq!(l1, l2);
            prop_assert_eq!(a1.len(), a2.len());
            for (x, y) in a1.iter().zip(a2) {
                prop_assert_eq!(value_bits(x), value_bits(y));
            }
        }
    }

    #[test]
    fn response_round_trips(resp in response_strategy()) {
        let bytes = resp.encode();
        let decoded = Response::decode(&bytes).expect("valid encoding decodes");
        prop_assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn frames_round_trip(payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..8)) {
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).expect("write");
        }
        let mut cursor = std::io::Cursor::new(buf);
        for p in &payloads {
            let got = read_frame(&mut cursor).expect("read").expect("frame present");
            prop_assert_eq!(&got, p);
        }
        prop_assert_eq!(read_frame(&mut cursor).expect("read"), None);
    }

    #[test]
    fn truncated_frames_error_not_panic(req in request_strategy(), cut in 0usize..64) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &req.encode()).expect("write");
        if cut < buf.len() && cut > 0 {
            buf.truncate(cut);
            let mut cursor = std::io::Cursor::new(buf);
            // Either a clean None (cut before the length prefix finished the
            // frame boundary check) or an error; never a panic or a bogus Ok.
            if let Ok(Some(payload)) = read_frame(&mut cursor) {
                // Only acceptable if the cut kept the whole frame.
                prop_assert_eq!(payload, req.encode());
            }
        }
    }

    #[test]
    fn truncated_payloads_error_not_panic(req in request_strategy(), cut in 0usize..48) {
        // Cut the *decoded payload* (not the frame): every proper prefix of
        // a valid encoding must decode to a clean error, never panic.
        let bytes = req.encode();
        if cut < bytes.len() {
            prop_assert!(Request::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn bad_tags_error_not_panic(tag in 8u8..=255, rest in prop::collection::vec(any::<u8>(), 0..64)) {
        // Request tags stop at 0x07; everything above must be rejected.
        let mut bytes = vec![tag];
        bytes.extend(rest);
        prop_assert!(Request::decode(&bytes).is_err());
    }

    #[test]
    fn overlong_payloads_error_not_panic(req in request_strategy(), junk in prop::collection::vec(any::<u8>(), 1..32)) {
        // Trailing bytes after a complete body are a framing bug upstream;
        // the decoder must flag them rather than silently ignore them.
        let mut bytes = req.encode();
        bytes.extend(junk);
        prop_assert!(Request::decode(&bytes).is_err());
    }

    #[test]
    fn oversized_frame_lengths_error_not_allocate(len in 16_777_217u32..u32::MAX) {
        // A hostile length prefix beyond the 16 MiB cap must error cleanly
        // (and in particular must not attempt the allocation).
        let mut buf = len.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        let mut cursor = std::io::Cursor::new(buf);
        prop_assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn random_prefix_frames_never_panic(junk in prop::collection::vec(any::<u8>(), 0..96)) {
        // Arbitrary bytes fed to the framing layer: any of error, clean
        // EOF, or a (garbage) frame is fine — panicking or looping is not.
        let mut cursor = std::io::Cursor::new(junk);
        while let Ok(Some(payload)) = read_frame(&mut cursor) {
            let _ = Request::decode(&payload);
            let _ = Response::decode(&payload);
        }
    }
}
