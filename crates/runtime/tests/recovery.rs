//! Crash-recovery suite (DESIGN.md §12): panic isolation, shard
//! supervision, journal replay, disk persistence across a full server
//! restart, and the client-transparent session-resume path.
//!
//! Every test asserts the robustness contract from the client's seat:
//! injected crashes may cost wall-clock time, but never change observed
//! values, interaction counts, or exactly-once execution.

use hps_ir::{
    BinOp, Block, ComponentId, ComponentKind, Expr, FragLabel, Fragment, HiddenComponent,
    HiddenProgram, HiddenVar, LocalId, Place, Stmt, StmtKind, Ty, Value,
};
use hps_runtime::journal::truncate_tail;
use hps_runtime::tcp::{RetryPolicy, SessionServer, SessionServerHandle, TcpChannel};
use hps_runtime::wire::{read_frame, write_frame, Request, Response, WIRE_VERSION};
use hps_runtime::{Channel, CrashConfig, FaultClass, RuntimeError};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One hidden accumulator: L0(p) { acc = acc + p; return acc }. Stateful
/// on purpose — a lost, doubled or wrongly-rebuilt execution shows up as a
/// wrong running sum.
fn accumulator_program() -> HiddenProgram {
    let mut hp = HiddenProgram::new();
    hp.add(HiddenComponent {
        id: ComponentId::new(0),
        kind: ComponentKind::Function {
            func_name: "f".into(),
        },
        vars: vec![HiddenVar {
            name: "acc".into(),
            ty: Ty::Int,
            init: None,
        }],
        fragments: vec![Fragment {
            label: FragLabel::new(0),
            params: vec![("p".into(), Ty::Int)],
            body: Block::of(vec![Stmt::new(StmtKind::Assign {
                place: Place::Local(LocalId::new(0)),
                value: Expr::binary(
                    BinOp::Add,
                    Expr::local(LocalId::new(0)),
                    Expr::local(LocalId::new(1)),
                ),
            })]),
            ret: Some(Expr::local(LocalId::new(0))),
        }],
    });
    hp
}

fn quick_policy() -> RetryPolicy {
    RetryPolicy::new()
        .with_base_backoff(Duration::from_millis(1))
        .with_timeout(Duration::from_secs(5))
        .with_max_attempts(10)
        .with_jitter_seed(7)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hps-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Polls a handle predicate with a bounded wait (supervisor ticks are
/// asynchronous; nothing here is load-bearing for determinism).
fn wait_for(handle: &SessionServerHandle, pred: impl Fn(&SessionServerHandle) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !pred(handle) {
        assert!(Instant::now() < deadline, "condition not reached in 5s");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn injected_panics_are_invisible_to_the_client() {
    let server = SessionServer::bind("127.0.0.1:0", accumulator_program())
        .expect("bind")
        .with_crash(CrashConfig {
            seed: 11,
            shard_kill_per_mille: 0,
            panic_per_mille: 300,
        });
    let handle = server.handle().expect("handle");
    let addr = handle.addr();
    let serve = std::thread::spawn(move || server.serve(|_, _| {}));
    let mut chan =
        TcpChannel::connect_reliable_with_session(addr, quick_policy(), 1).expect("connect");
    let c = ComponentId::new(0);
    let l = FragLabel::new(0);
    for n in 1..=30i64 {
        let r = chan.call(c, 1, l, &[Value::Int(n)]).expect("call");
        assert_eq!(r.value, Value::Int(n * (n + 1) / 2), "call {n}");
    }
    assert_eq!(chan.interactions(), 30);
    let stats = handle.stats();
    assert!(stats.panics_caught > 0, "a 30% panic rate must fire");
    assert_eq!(
        stats.calls, 30,
        "rebuild-and-retry must not double-count logical calls"
    );
    assert!(
        stats.journal_replays >= stats.panics_caught,
        "every caught panic rebuilds from the journal"
    );
    // The recovery counters flow into the live metrics scrape.
    let m = handle.metrics();
    assert_eq!(
        m.counter("hps_server_panics_caught_total"),
        stats.panics_caught
    );
    assert_eq!(
        m.counter("hps_server_journal_replays_total"),
        stats.journal_replays
    );
    assert!(
        m.histogram("hps_server_recovery_latency_micros")
            .is_some_and(|h| h.count() == stats.journal_replays),
        "one recovery-latency sample per rebuild"
    );
    chan.shutdown().expect("shutdown");
    handle.stop();
    serve.join().expect("join").expect("serve");
}

#[test]
fn unrecoverable_panic_poisons_only_the_session() {
    // journal_limit 1: by the third call the ring has dropped history, so
    // the second rebuild is impossible and the session must poison rather
    // than silently rebuild wrong state.
    let server = SessionServer::bind("127.0.0.1:0", accumulator_program())
        .expect("bind")
        .with_journal_limit(1)
        .with_crash(CrashConfig {
            seed: 5,
            shard_kill_per_mille: 0,
            panic_per_mille: 1000,
        });
    let handle = server.handle().expect("handle");
    let addr = handle.addr();
    let serve = std::thread::spawn(move || server.serve(|_, _| {}));
    let c = ComponentId::new(0);
    let l = FragLabel::new(0);
    let mut chan =
        TcpChannel::connect_reliable_with_session(addr, quick_policy(), 1).expect("connect");
    // Calls 1 and 2 panic once each, rebuild from the (still complete)
    // journal, and succeed transparently.
    assert_eq!(
        chan.call(c, 1, l, &[Value::Int(1)]).expect("call 1").value,
        Value::Int(1)
    );
    assert_eq!(
        chan.call(c, 1, l, &[Value::Int(2)]).expect("call 2").value,
        Value::Int(3)
    );
    // Call 3: the ring overflowed, rebuild fails, the session poisons.
    let err = chan
        .call(c, 1, l, &[Value::Int(3)])
        .expect_err("poisoned session must reject");
    assert!(
        matches!(
            &err,
            RuntimeError::Transport {
                class: FaultClass::Terminal,
                op: "panic",
                ..
            }
        ),
        "got {err:?}"
    );
    // Poisoning is sticky for the session...
    let again = chan
        .call(c, 1, l, &[Value::Int(4)])
        .expect_err("still poisoned");
    assert!(!again.is_retryable());
    // ...but the blast radius is one session: a different session on the
    // same (single) shard still works, panicking and rebuilding as usual.
    let mut other =
        TcpChannel::connect_reliable_with_session(addr, quick_policy(), 2).expect("connect 2");
    assert_eq!(
        other.call(c, 1, l, &[Value::Int(9)]).expect("call").value,
        Value::Int(9)
    );
    other.shutdown().expect("shutdown");
    handle.stop();
    serve.join().expect("join").expect("serve");
}

#[test]
fn killed_shard_is_respawned_and_sessions_rebuild() {
    let server = SessionServer::bind("127.0.0.1:0", accumulator_program()).expect("bind");
    let handle = server.handle().expect("handle");
    let addr = handle.addr();
    let serve = std::thread::spawn(move || server.serve(|_, _| {}));
    let c = ComponentId::new(0);
    let l = FragLabel::new(0);
    let mut chan =
        TcpChannel::connect_reliable_with_session(addr, quick_policy(), 1).expect("connect");
    for n in 1..=5i64 {
        let r = chan.call(c, 1, l, &[Value::Int(n)]).expect("call");
        assert_eq!(r.value, Value::Int(n * (n + 1) / 2));
    }
    // Crash drill: kill the only shard, wait for the supervisor.
    handle.kill_shard(0);
    wait_for(&handle, |h| h.stats().shard_restarts >= 1);
    // The session's hidden accumulator survives via journal replay.
    for n in 6..=10i64 {
        let r = chan.call(c, 1, l, &[Value::Int(n)]).expect("call");
        assert_eq!(r.value, Value::Int(n * (n + 1) / 2), "after respawn");
    }
    assert_eq!(chan.interactions(), 10);
    let stats = handle.stats();
    assert!(stats.shard_restarts >= 1);
    assert!(stats.journal_replays >= 1, "rebuild must come from replay");
    assert_eq!(stats.calls, 10, "exactly-once across the respawn");
    chan.shutdown().expect("shutdown");
    handle.stop();
    serve.join().expect("join").expect("serve");
}

/// Binds a fresh server on a *specific* addr, retrying briefly: the old
/// listener's port frees asynchronously after its serve thread joins.
fn rebind(addr: SocketAddr, dir: &PathBuf) -> SessionServer {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match SessionServer::bind(addr, accumulator_program()) {
            Ok(s) => return s.with_journal_dir(dir),
            Err(e) => {
                assert!(Instant::now() < deadline, "rebind {addr}: {e}");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

#[test]
fn sessions_survive_a_full_server_restart_via_disk_journal() {
    let dir = fresh_dir("restart");
    let server = SessionServer::bind("127.0.0.1:0", accumulator_program())
        .expect("bind")
        .with_journal_dir(&dir);
    let handle = server.handle().expect("handle");
    let addr = handle.addr();
    let serve = std::thread::spawn(move || server.serve(|_, _| {}));
    let c = ComponentId::new(0);
    let l = FragLabel::new(0);
    let mut chan =
        TcpChannel::connect_reliable_with_session(addr, quick_policy(), 42).expect("connect");
    for n in 1..=10i64 {
        let r = chan.call(c, 1, l, &[Value::Int(n)]).expect("call");
        assert_eq!(r.value, Value::Int(n * (n + 1) / 2));
    }
    // Full process-restart equivalent: stop the server, then bind a brand
    // new one on the same addr with the same journal directory.
    handle.stop();
    serve.join().expect("join").expect("serve");
    let server = rebind(addr, &dir);
    let handle = server.handle().expect("handle");
    let serve = std::thread::spawn(move || server.serve(|_, _| {}));
    // The same channel keeps going: its next call reconnects, the new
    // server rebuilds session 42 from disk, sequences line up.
    for n in 11..=20i64 {
        let r = chan.call(c, 1, l, &[Value::Int(n)]).expect("call");
        assert_eq!(r.value, Value::Int(n * (n + 1) / 2), "after restart");
    }
    assert_eq!(chan.interactions(), 20);
    let stats = handle.stats();
    assert!(stats.journal_replays >= 1, "restart must rebuild by replay");
    assert_eq!(stats.calls, 10, "only post-restart units execute anew");
    chan.shutdown().expect("shutdown");
    handle.stop();
    serve.join().expect("join").expect("serve");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_is_re_driven_by_session_resume() {
    let dir = fresh_dir("truncate");
    let server = SessionServer::bind("127.0.0.1:0", accumulator_program())
        .expect("bind")
        .with_journal_dir(&dir);
    let handle = server.handle().expect("handle");
    let addr = handle.addr();
    let serve = std::thread::spawn(move || server.serve(|_, _| {}));
    let c = ComponentId::new(0);
    let l = FragLabel::new(0);
    let mut chan =
        TcpChannel::connect_reliable_with_session(addr, quick_policy(), 42).expect("connect");
    for n in 1..=10i64 {
        chan.call(c, 1, l, &[Value::Int(n)]).expect("call");
    }
    handle.stop();
    serve.join().expect("join").expect("serve");
    // Tear the last committed frame off the disk journal: recovery now
    // comes up one unit short of what the client observed.
    truncate_tail(&dir, 42).expect("truncate fault");
    let server = rebind(addr, &dir);
    let handle = server.handle().expect("handle");
    let serve = std::thread::spawn(move || server.serve(|_, _| {}));
    // The reconnect handshake detects the short server and re-drives the
    // missing frame from the client's resume window — transparently.
    for n in 11..=20i64 {
        let r = chan.call(c, 1, l, &[Value::Int(n)]).expect("call");
        assert_eq!(r.value, Value::Int(n * (n + 1) / 2), "after torn tail");
    }
    assert_eq!(
        chan.interactions(),
        20,
        "the re-driven frame is a retransmit, not a logical interaction"
    );
    let stats = handle.stats();
    assert_eq!(
        stats.calls, 11,
        "the torn unit re-executes once, the rest are new"
    );
    chan.shutdown().expect("shutdown");
    handle.stop();
    serve.join().expect("join").expect("serve");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn back_pressure_blocks_only_the_busy_shard() {
    // Two shards, queue bound 1. Sessions 1/3 hash to shard 1, session 2
    // to shard 0. A huge batch occupies shard 1's executor while another
    // client queues behind it; shard 0 must keep serving throughout.
    let server = SessionServer::bind("127.0.0.1:0", accumulator_program())
        .expect("bind")
        .with_shards(2)
        .with_queue_capacity(1);
    let handle = server.handle().expect("handle");
    let addr = handle.addr();
    let serve = std::thread::spawn(move || server.serve(|_, _| {}));
    let c = ComponentId::new(0);
    let l = FragLabel::new(0);
    let busy = std::thread::spawn(move || {
        let mut chan =
            TcpChannel::connect_reliable_with_session(addr, quick_policy(), 1).expect("connect");
        let calls: Vec<_> = (1..=80_000i64)
            .map(|n| hps_runtime::PendingCall {
                component: c,
                key: 1,
                label: l,
                args: vec![Value::Int(n)],
            })
            .collect();
        let replies = chan.call_batch(&calls).expect("batch");
        assert_eq!(replies.len(), 80_000);
        assert_eq!(
            replies.last().expect("last").value,
            Value::Int(80_000 * 80_001 / 2)
        );
        chan.shutdown().expect("shutdown");
    });
    // Let the batch land in shard 1's executor, then pile a second client
    // onto the same shard: its Hello sits in the bounded queue.
    std::thread::sleep(Duration::from_millis(100));
    let queued = std::thread::spawn(move || {
        let mut chan =
            TcpChannel::connect_reliable_with_session(addr, quick_policy(), 3).expect("connect");
        let r = chan.call(c, 1, l, &[Value::Int(7)]).expect("call");
        assert_eq!(r.value, Value::Int(7));
        chan.shutdown().expect("shutdown");
    });
    // Shard 0 keeps serving while shard 1 is saturated.
    let mut fast =
        TcpChannel::connect_reliable_with_session(addr, quick_policy(), 2).expect("connect");
    for n in 1..=50i64 {
        let r = fast.call(c, 1, l, &[Value::Int(n)]).expect("fast call");
        assert_eq!(r.value, Value::Int(n * (n + 1) / 2));
    }
    assert!(
        !busy.is_finished(),
        "the fast shard finished 50 calls while the busy shard was still \
         chewing its batch — back-pressure stayed local"
    );
    fast.shutdown().expect("shutdown");
    busy.join().expect("busy client");
    queued.join().expect("queued client");
    let shards = handle.shard_stats();
    assert_eq!(
        shards[0].calls, 50,
        "shard 0 served exactly the fast client"
    );
    assert_eq!(
        shards[1].calls, 80_001,
        "shard 1 served batch + queued call"
    );
    handle.stop();
    serve.join().expect("join").expect("serve");
}

#[test]
fn call_deadline_fails_fast_against_a_hung_server() {
    // A hand-rolled server that completes the handshake and then never
    // answers another frame — the pathological hang --timeout exists for.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let hang = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = std::io::BufReader::new(&stream);
        let mut writer = std::io::BufWriter::new(&stream);
        let payload = read_frame(&mut reader).expect("read").expect("frame");
        let Request::Hello { session, .. } = Request::decode(&payload).expect("decode") else {
            panic!("expected Hello");
        };
        let mut buf = Vec::new();
        Response::HelloAck {
            version: WIRE_VERSION,
            session,
            next_seq: 1,
        }
        .encode_into(&mut buf);
        write_frame(&mut writer, &buf).expect("ack");
        // Hold the socket open without ever reading or replying again.
        std::thread::sleep(Duration::from_secs(10));
    });
    let policy = quick_policy()
        .with_max_attempts(50)
        .with_call_deadline(Some(Duration::from_millis(300)));
    let mut chan = TcpChannel::connect_reliable_with_session(addr, policy, 1).expect("connect");
    let started = Instant::now();
    let err = chan
        .call(ComponentId::new(0), 1, FragLabel::new(0), &[Value::Int(1)])
        .expect_err("hung server must trip the deadline");
    let elapsed = started.elapsed();
    assert!(
        matches!(
            &err,
            RuntimeError::Transport {
                class: FaultClass::Terminal,
                op: "deadline",
                ..
            }
        ),
        "got {err:?}"
    );
    assert!(!err.is_retryable());
    assert!(
        elapsed < Duration::from_secs(3),
        "deadline must beat the full backoff budget (took {elapsed:?})"
    );
    drop(chan);
    // The hang thread sleeps out its 10s on its own; don't join it.
    drop(hang);
}
