//! The secure-side fragment executor and the open-side interpreter must
//! agree exactly on scalar computation — they execute the two halves of
//! one program, so any semantic drift (overflow, division, short-circuit,
//! loop/break handling) silently corrupts split programs.
//!
//! Strategy: generate random scalar statement blocks over a fixed set of
//! integer slots, run them (a) as a hidden fragment against persistent
//! vars, (b) as a normal function whose locals start at the same values,
//! and compare every resulting slot.

use hps_ir::build::FnBuilder;
use hps_ir::{
    BinOp, Block, ComponentId, Expr, FragLabel, Fragment, HiddenComponent, HiddenProgram,
    HiddenVar, LocalId, Place, Program, Stmt, StmtKind, Ty, UnOp, Value,
};
use hps_runtime::{run_function, ExecConfig, SecureServer};
use proptest::prelude::*;

const NSLOTS: usize = 4;

#[derive(Debug, Clone)]
enum E {
    Const(i64),
    Slot(usize),
    Bin(BinOp, Box<E>, Box<E>),
    Neg(Box<E>),
}

#[derive(Debug, Clone)]
enum S {
    Assign(usize, E),
    If(E, E, Vec<S>, Vec<S>),
    Loop(u8, Vec<S>),
}

fn e_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-20i64..21).prop_map(E::Const),
        (0..NSLOTS).prop_map(E::Slot),
    ];
    leaf.prop_recursive(3, 10, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul),],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| E::Bin(op, Box::new(a), Box::new(b))),
            inner.prop_map(|a| E::Neg(Box::new(a))),
        ]
    })
}

fn s_strategy(depth: u32) -> BoxedStrategy<S> {
    let assign = (0..NSLOTS, e_strategy()).prop_map(|(i, e)| S::Assign(i, e));
    if depth == 0 {
        return assign.boxed();
    }
    let block = prop::collection::vec(s_strategy(depth - 1), 1..4);
    prop_oneof![
        3 => assign,
        1 => (e_strategy(), e_strategy(), block.clone(), block.clone())
            .prop_map(|(a, b, t, e)| S::If(a, b, t, e)),
        1 => (1u8..5, block).prop_map(|(n, b)| S::Loop(n, b)),
    ]
    .boxed()
}

/// Renders to an `Expr` over slot locals `base + i`.
fn build_expr(e: &E, base: usize) -> Expr {
    match e {
        E::Const(c) => Expr::int(*c),
        E::Slot(i) => Expr::local(LocalId::new(base + i)),
        E::Bin(op, a, b) => Expr::binary(*op, build_expr(a, base), build_expr(b, base)),
        E::Neg(a) => Expr::unary(UnOp::Neg, build_expr(a, base)),
    }
}

fn build_stmts(
    stmts: &[S],
    base: usize,
    counter_base: usize,
    next_counter: &mut usize,
) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            S::Assign(i, e) => out.push(Stmt::new(StmtKind::Assign {
                place: Place::Local(LocalId::new(base + i)),
                value: build_expr(e, base),
            })),
            S::If(a, b, t, e) => out.push(Stmt::new(StmtKind::If {
                cond: Expr::binary(BinOp::Lt, build_expr(a, base), build_expr(b, base)),
                then_blk: Block::of(build_stmts(t, base, counter_base, next_counter)),
                else_blk: Block::of(build_stmts(e, base, counter_base, next_counter)),
            })),
            S::Loop(n, body) => {
                let c = LocalId::new(counter_base + *next_counter);
                *next_counter += 1;
                out.push(Stmt::new(StmtKind::Assign {
                    place: Place::Local(c),
                    value: Expr::int(0),
                }));
                let mut inner = build_stmts(body, base, counter_base, next_counter);
                inner.push(Stmt::new(StmtKind::Assign {
                    place: Place::Local(c),
                    value: Expr::binary(BinOp::Add, Expr::local(c), Expr::int(1)),
                }));
                out.push(Stmt::new(StmtKind::While {
                    cond: Expr::binary(BinOp::Lt, Expr::local(c), Expr::int(i64::from(*n))),
                    body: Block::of(inner),
                }));
            }
        }
    }
    out
}

fn count_loops(stmts: &[S]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            S::Loop(_, b) => 1 + count_loops(b),
            S::If(_, _, t, e) => count_loops(t) + count_loops(e),
            _ => 0,
        })
        .sum()
}

/// Runs the block as a hidden fragment: slots are the persistent hidden
/// vars (indices 0..NSLOTS), loop counters are further vars.
fn run_as_fragment(stmts: &[S], init: &[i64; NSLOTS]) -> Vec<i64> {
    let mut next = 0usize;
    let body = build_stmts(stmts, 0, NSLOTS, &mut next);
    // Fragment 0 runs the block; fragments 1..=NSLOTS expose the slots
    // (SecureServer has no state-inspection API by design).
    let mut fragments = vec![Fragment {
        label: FragLabel::new(0),
        params: Vec::new(),
        body: Block::of(body),
        ret: None,
    }];
    let mut hp = HiddenProgram::new();
    for i in 0..NSLOTS {
        fragments.push(Fragment {
            label: FragLabel::new(1 + i),
            params: Vec::new(),
            body: Block::new(),
            ret: Some(Expr::local(LocalId::new(i))),
        });
    }
    let mut vars: Vec<HiddenVar> = (0..NSLOTS)
        .map(|i| HiddenVar {
            name: format!("s{i}"),
            ty: Ty::Int,
            init: Some(Value::Int(init[i])),
        })
        .collect();
    for c in 0..count_loops(stmts) {
        vars.push(HiddenVar {
            name: format!("c{c}"),
            ty: Ty::Int,
            init: None,
        });
    }
    hp.add(HiddenComponent {
        id: ComponentId::new(0),
        kind: hps_ir::ComponentKind::Function {
            func_name: "gen".into(),
        },
        vars,
        fragments,
    });
    let mut server = SecureServer::new(hp);
    server
        .call(ComponentId::new(0), 7, FragLabel::new(0), &[])
        .expect("fragment runs");
    (0..NSLOTS)
        .map(|i| {
            match server
                .call(ComponentId::new(0), 7, FragLabel::new(1 + i), &[])
                .expect("get runs")
                .value
            {
                Value::Int(v) => v,
                other => panic!("expected int, got {other:?}"),
            }
        })
        .collect()
}

/// Runs the same block as an ordinary function body.
fn run_as_function(stmts: &[S], init: &[i64; NSLOTS]) -> Vec<i64> {
    let mut fb = FnBuilder::new("gen", Ty::Int);
    for (i, &v) in init.iter().enumerate().take(NSLOTS) {
        let l = fb.local(format!("s{i}"), Ty::Int);
        fb.assign_local(l, Expr::int(v));
    }
    for c in 0..count_loops(stmts) {
        fb.local(format!("c{c}"), Ty::Int);
    }
    let mut next = 0usize;
    for s in build_stmts(stmts, 0, NSLOTS, &mut next) {
        fb.push(s.kind);
    }
    // Return s0..s3 encoded via prints.
    for i in 0..NSLOTS {
        fb.print(Expr::local(LocalId::new(i)));
    }
    fb.ret(Some(Expr::int(0)));
    let mut program = Program::new();
    program.add_function(fb.finish());
    let out = run_function(&program, "gen", &[], ExecConfig::new()).expect("runs");
    out.output.iter().map(|l| l.parse().expect("int")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn fragment_and_interpreter_agree(
        stmts in prop::collection::vec(s_strategy(2), 1..8),
        a in -10i64..11, b in -10i64..11, c in -10i64..11, d in -10i64..11,
    ) {
        let init = [a, b, c, d];
        let frag = run_as_fragment(&stmts, &init);
        let full = run_as_function(&stmts, &init);
        prop_assert_eq!(frag, full);
    }
}
