//! Differential property test: the fragment bytecode VM ([`hps_runtime::bytecode`])
//! must be observationally identical to the tree-walk interpreter on random
//! well-formed fragments — same returned value, same hidden-variable state,
//! same cost units, and the same [`RuntimeError`] (including
//! `StepLimitExceeded` firing at exactly the same statement count).
//!
//! Generated fragments deliberately include diverging loops (caught by small
//! step limits), type-confused operands, division by zero, out-of-range
//! hidden-slot references and statements that are illegal inside fragments
//! (`print`, `return`), because error parity is as much a part of the VM
//! contract as value parity.

use hps_ir::{
    BinOp, Block, Builtin, Expr, FragLabel, Fragment, LocalId, Place, Stmt, StmtKind, Ty, UnOp,
    Value,
};
use hps_runtime::bytecode::{compile_fragment, run_compiled_with_limit};
use hps_runtime::fragment::run_fragment_with_limit;
use hps_runtime::{CostModel, RtValue};
use proptest::prelude::*;

/// Fixed fragment shape: slots `[0, N_VARS)` are hidden variables,
/// `[N_VARS, N_SLOTS)` are parameters. Fixing the shape keeps the in-range /
/// out-of-range classification of generated `Local` references stable.
const N_VARS: usize = 3;
const N_PARAMS: usize = 2;
const N_SLOTS: usize = N_VARS + N_PARAMS;

const BINOPS: [BinOp; 13] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::And,
    BinOp::Or,
];

const BUILTINS: [Builtin; 8] = [
    Builtin::Abs,
    Builtin::Min,
    Builtin::Max,
    Builtin::Floor,
    Builtin::IntCast,
    Builtin::FloatCast,
    Builtin::Sqrt,
    Builtin::Exp,
];

fn value_strategy() -> BoxedStrategy<Value> {
    prop_oneof![
        5 => (-8i64..9).prop_map(Value::Int),
        2 => any::<bool>().prop_map(Value::Bool),
        2 => (-6i64..7).prop_map(|n| Value::Float(n as f64 * 0.5)),
    ]
    .boxed()
}

fn expr_strategy() -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        3 => value_strategy().prop_map(Expr::Const),
        // In-range slots (vars + params) plus the occasional out-of-range
        // reference, which must surface the same IllegalFragmentOp in both
        // engines — or no error at all when the code is dead.
        5 => (0usize..N_SLOTS).prop_map(|i| Expr::Local(LocalId::new(i))),
        1 => Just(Expr::Local(LocalId::new(N_SLOTS + 2))),
    ]
    .boxed();
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            4 => ((0usize..BINOPS.len()), inner.clone(), inner.clone()).prop_map(
                |(op, lhs, rhs)| Expr::Binary {
                    op: BINOPS[op],
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                }
            ),
            1 => ((0usize..2), inner.clone()).prop_map(|(op, arg)| Expr::Unary {
                op: if op == 0 { UnOp::Neg } else { UnOp::Not },
                arg: Box::new(arg),
            }),
            // Unary builtins only; Min/Max with one arg is an arity error the
            // two engines must also agree on, so no filtering here.
            1 => ((0usize..BUILTINS.len()), inner).prop_map(|(b, arg)| Expr::BuiltinCall {
                builtin: BUILTINS[b],
                args: vec![arg],
            }),
        ]
        .boxed()
    })
}

fn stmt_strategy() -> BoxedStrategy<Stmt> {
    let leaf = prop_oneof![
        6 => ((0usize..N_SLOTS + 1), expr_strategy()).prop_map(|(slot, value)| {
            Stmt::new(StmtKind::Assign {
                place: Place::Local(LocalId::new(slot)),
                value,
            })
        }),
        1 => Just(Stmt::new(StmtKind::Break)),
        1 => Just(Stmt::new(StmtKind::Continue)),
        1 => Just(Stmt::new(StmtKind::Nop)),
        // Illegal inside fragments; both engines must reject identically
        // when (and only when) control flow actually reaches it.
        1 => expr_strategy().prop_map(|e| Stmt::new(StmtKind::Print(e))),
        1 => expr_strategy().prop_map(|e| Stmt::new(StmtKind::Return(Some(e)))),
    ]
    .boxed();
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            2 => (
                expr_strategy(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..2),
            )
                .prop_map(|(cond, t, e)| Stmt::new(StmtKind::If {
                    cond,
                    then_blk: Block::of(t),
                    else_blk: Block::of(e),
                })),
            // Loops may diverge; the small step limits below catch them and
            // both engines must report StepLimitExceeded at the same count.
            1 => (expr_strategy(), prop::collection::vec(inner, 0..3)).prop_map(
                |(cond, body)| Stmt::new(StmtKind::While {
                    cond,
                    body: Block::of(body),
                })
            ),
        ]
        .boxed()
    })
}

fn fragment_strategy() -> BoxedStrategy<Fragment> {
    (
        prop::collection::vec(stmt_strategy(), 0..6),
        prop_oneof![
            2 => expr_strategy().prop_map(Some),
            1 => Just(None),
        ],
    )
        .prop_map(|(body, ret)| Fragment {
            label: FragLabel::new(7),
            params: (0..N_PARAMS).map(|i| (format!("p{i}"), Ty::Int)).collect(),
            body: Block::of(body),
            ret,
        })
        .boxed()
}

fn vars_strategy() -> BoxedStrategy<Vec<RtValue>> {
    prop::collection::vec(
        value_strategy().prop_map(RtValue::from_const),
        N_VARS..N_VARS + 1,
    )
    .boxed()
}

/// Runs the fragment through both engines at the given limit and asserts
/// byte-identical observable behaviour.
fn check_parity(fragment: &Fragment, vars: &[RtValue], args: &[Value], limit: u64) {
    let cm = CostModel::new();
    let mut tree_vars = vars.to_vec();
    let mut vm_vars = vars.to_vec();
    let tree = run_fragment_with_limit(fragment, &mut tree_vars, args, &cm, limit);
    let compiled = compile_fragment(fragment, vars.len(), &cm);
    let vm = run_compiled_with_limit(&compiled, &mut vm_vars, args, limit);
    assert_eq!(
        tree, vm,
        "engines diverged at limit {limit}\nfragment: {fragment:?}\nvars: {vars:?}\nargs: {args:?}"
    );
    assert_eq!(
        tree_vars, vm_vars,
        "hidden state diverged at limit {limit}\nfragment: {fragment:?}"
    );
}

proptest! {
    /// Random fragments with correct arity: identical value, hidden state,
    /// cost and error across a spread of step limits. Limit 1 pins the very
    /// first tick; 2000 lets most fragments finish while still bounding
    /// diverging loops.
    #[test]
    fn vm_matches_tree_walk(
        fragment in fragment_strategy(),
        vars in vars_strategy(),
        a0 in -8i64..9,
        a1 in -8i64..9,
    ) {
        let args = [Value::Int(a0), Value::Int(a1)];
        for limit in [1u64, 2, 7, 2_000] {
            check_parity(&fragment, &vars, &args, limit);
        }
    }

    /// Arity mismatches must produce the same Channel error before any
    /// statement executes in either engine.
    #[test]
    fn vm_matches_tree_walk_on_bad_arity(
        fragment in fragment_strategy(),
        vars in vars_strategy(),
        n_args in 0usize..5,
    ) {
        if n_args == N_PARAMS {
            return; // covered by vm_matches_tree_walk
        }
        let args: Vec<Value> = (0..n_args as i64).map(Value::Int).collect();
        check_parity(&fragment, &vars, &args, 2_000);
    }

    /// Non-integer arguments exercise type-confusion paths (bool conditions,
    /// float arithmetic, casts) through both engines.
    #[test]
    fn vm_matches_tree_walk_on_mixed_arg_types(
        fragment in fragment_strategy(),
        vars in vars_strategy(),
        a0 in prop_oneof![
            any::<bool>().prop_map(Value::Bool),
            (-6i64..7).prop_map(|n| Value::Float(n as f64 * 0.5)),
        ],
        a1 in -8i64..9,
    ) {
        let args = [a0, Value::Int(a1)];
        check_parity(&fragment, &vars, &args, 2_000);
    }
}
