//! The CI reliability matrix: deterministic fault injection across seeds
//! and fault kinds, both in-process ([`FaultyChannel`]) and over real
//! sockets ([`SessionServer`] chaos mode).
//!
//! CI runs this suite once per (seed, fault-kind) matrix cell via the
//! `HPS_CHAOS_SEED` / `HPS_CHAOS_FAULT` environment variables; without
//! them every default cell runs. On failure the chaos log names every
//! injected fault so the schedule can be replayed locally.

use hps_ir::{
    BinOp, Block, ComponentId, ComponentKind, Expr, FragLabel, Fragment, HiddenComponent,
    HiddenProgram, HiddenVar, LocalId, Place, Stmt, StmtKind, Ty, Value,
};
use hps_runtime::fault::{FaultKind, FaultPlan, FaultyChannel};
use hps_runtime::tcp::{ChaosConfig, RetryPolicy, SessionServer, TcpChannel};
use hps_runtime::{Channel, InProcessChannel, SecureServer};
use std::time::Duration;

/// One hidden accumulator component: L0(p) { acc = acc + p; return acc }.
/// Stateful on purpose — a duplicated or replayed execution would visibly
/// corrupt the running sum.
fn accumulator_program() -> HiddenProgram {
    let mut hp = HiddenProgram::new();
    hp.add(HiddenComponent {
        id: ComponentId::new(0),
        kind: ComponentKind::Function {
            func_name: "f".into(),
        },
        vars: vec![HiddenVar {
            name: "acc".into(),
            ty: Ty::Int,
            init: None,
        }],
        fragments: vec![Fragment {
            label: FragLabel::new(0),
            params: vec![("p".into(), Ty::Int)],
            body: Block::of(vec![Stmt::new(StmtKind::Assign {
                place: Place::Local(LocalId::new(0)),
                value: Expr::binary(
                    BinOp::Add,
                    Expr::local(LocalId::new(0)),
                    Expr::local(LocalId::new(1)),
                ),
            })]),
            ret: Some(Expr::local(LocalId::new(0))),
        }],
    });
    hp
}

/// The matrix cell selected by the environment, or the full default matrix.
fn matrix() -> Vec<(u64, FaultKind)> {
    let seeds: Vec<u64> = match std::env::var("HPS_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("HPS_CHAOS_SEED must be an integer")],
        Err(_) => vec![1, 2, 3, 4],
    };
    let kinds: Vec<FaultKind> = match std::env::var("HPS_CHAOS_FAULT") {
        Ok(s) => vec![s.parse().expect("HPS_CHAOS_FAULT must name a fault kind")],
        Err(_) => FaultKind::ALL.to_vec(),
    };
    seeds
        .into_iter()
        .flat_map(|s| kinds.iter().map(move |k| (s, *k)))
        .collect()
}

#[test]
fn in_process_matrix_is_invisible_to_the_accumulator() {
    for (seed, kind) in matrix() {
        let inner = InProcessChannel::new(SecureServer::new(accumulator_program()));
        let plan = FaultPlan::new(seed, &[kind], 300);
        let mut chan = FaultyChannel::new(inner, plan);
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        for n in 1..=25i64 {
            let r = chan.call(c, 1, l, &[Value::Int(n)]).unwrap_or_else(|e| {
                panic!(
                    "seed {seed} {kind}: call {n}: {e}\nchaos log:\n{}",
                    chan.chaos_log().join("\n")
                )
            });
            assert_eq!(
                r.value,
                Value::Int(n * (n + 1) / 2),
                "seed {seed} {kind}: wrong sum at call {n}"
            );
        }
        assert_eq!(chan.interactions(), 25, "seed {seed} {kind}");
        assert_eq!(
            chan.inner().server().calls_served(),
            25,
            "seed {seed} {kind}: exactly-once violated"
        );
    }
}

#[test]
fn tcp_chaos_matrix_round_trips_every_seed() {
    for (seed, kind) in matrix() {
        // The socket layer cannot express per-kind faults; chaos kills the
        // connection at seeded points instead, which subsumes drop-style
        // faults for every kind cell.
        let server = SessionServer::bind("127.0.0.1:0", accumulator_program())
            .expect("bind")
            .with_chaos(ChaosConfig {
                seed,
                kill_per_mille: 200,
            });
        let handle = server.handle().expect("handle");
        let addr = handle.addr();
        let serve = std::thread::spawn(move || server.serve(|_, _| {}));
        let policy = RetryPolicy::new()
            .with_base_backoff(Duration::from_millis(1))
            .with_max_attempts(12)
            .with_jitter_seed(seed);
        let mut chan = TcpChannel::connect_reliable(addr, policy)
            .unwrap_or_else(|e| panic!("seed {seed} {kind}: connect: {e}"));
        let c = ComponentId::new(0);
        let l = FragLabel::new(0);
        for n in 1..=20i64 {
            let r = chan
                .call(c, 1, l, &[Value::Int(n)])
                .unwrap_or_else(|e| panic!("seed {seed} {kind}: call {n}: {e}"));
            assert_eq!(r.value, Value::Int(n * (n + 1) / 2), "seed {seed} {kind}");
        }
        assert_eq!(chan.interactions(), 20);
        let stats = handle.stats();
        assert_eq!(
            stats.calls, 20,
            "seed {seed} {kind}: server executed a retransmit"
        );
        chan.shutdown().expect("shutdown");
        handle.stop();
        serve.join().expect("join").expect("serve");
    }
}

#[test]
fn fault_plans_are_reproducible() {
    // Same seed, same schedule: the chaos log (the artifact CI uploads on
    // failure) must be identical across runs.
    let run = || {
        let inner = InProcessChannel::new(SecureServer::new(accumulator_program()));
        let mut chan = FaultyChannel::new(inner, FaultPlan::new(99, &FaultKind::ALL, 400));
        for n in 1..=15i64 {
            chan.call(ComponentId::new(0), 1, FragLabel::new(0), &[Value::Int(n)])
                .expect("call");
        }
        (chan.transport_stats(), chan.chaos_log().to_vec())
    };
    let (stats_a, log_a) = run();
    let (stats_b, log_b) = run();
    assert_eq!(stats_a, stats_b);
    assert_eq!(log_a, log_b);
    assert!(!log_a.is_empty(), "a 40% fault rate must inject something");
}
