//! Failure injection on the open↔hidden channel: errors propagate cleanly,
//! and integrity violations (a tampering or lossy "secure" server) change
//! behaviour — demonstrating that the open component genuinely depends on
//! the hidden half being correct, not just present.

use hps_ir::{ComponentId, FragLabel, Value};
use hps_runtime::{
    run_program, CallReply, Channel, ExecConfig, Executor, InProcessChannel, Interp, RuntimeError,
    SecureServer, SplitMeta,
};

fn split_fixture() -> (hps_ir::Program, hps_core::SplitResult) {
    let program = hps_lang::parse(
        "fn f(x: int, y: int) -> int {
            var a: int = x * 3 + y;
            var s: int = 0;
            var i: int = a;
            while (i < a + 10) { s = s + i; i = i + 1; }
            return s;
        }
        fn main() { print(f(2, 1)); print(f(5, 4)); }",
    )
    .expect("parses");
    let plan = hps_core::SplitPlan::single(&program, "f", "a").expect("plan");
    let split = hps_core::split_program(&program, &plan).expect("splits");
    (program, split)
}

/// A channel that corrupts every returned value by +1.
struct TamperingChannel {
    inner: InProcessChannel,
}

impl Channel for TamperingChannel {
    fn call(
        &mut self,
        component: ComponentId,
        key: u64,
        label: FragLabel,
        args: &[Value],
    ) -> Result<CallReply, RuntimeError> {
        let mut reply = self.inner.call(component, key, label, args)?;
        reply.value = match reply.value {
            Value::Int(v) => Value::Int(v.wrapping_add(1)),
            Value::Float(v) => Value::Float(v + 1.0),
            Value::Bool(v) => Value::Bool(!v),
        };
        Ok(reply)
    }

    fn release(&mut self, component: ComponentId, key: u64) -> Result<(), RuntimeError> {
        self.inner.release(component, key)
    }

    fn interactions(&self) -> u64 {
        self.inner.interactions()
    }

    fn rtt_cost(&self) -> u64 {
        0
    }
}

/// A channel that fails every `n`-th call.
struct FlakyChannel {
    inner: InProcessChannel,
    calls: u64,
    fail_every: u64,
}

impl Channel for FlakyChannel {
    fn call(
        &mut self,
        component: ComponentId,
        key: u64,
        label: FragLabel,
        args: &[Value],
    ) -> Result<CallReply, RuntimeError> {
        self.calls += 1;
        if self.calls.is_multiple_of(self.fail_every) {
            return Err(RuntimeError::Channel("injected network failure".into()));
        }
        self.inner.call(component, key, label, args)
    }

    fn release(&mut self, component: ComponentId, key: u64) -> Result<(), RuntimeError> {
        self.inner.release(component, key)
    }

    fn interactions(&self) -> u64 {
        self.inner.interactions()
    }

    fn rtt_cost(&self) -> u64 {
        0
    }
}

#[test]
fn tampered_replies_change_observable_behaviour() {
    let (_program, split) = split_fixture();
    let honest = Executor::new(&split.open, &split.hidden)
        .run(&[])
        .expect("runs");
    let mut tampering = TamperingChannel {
        inner: InProcessChannel::new(SecureServer::new(split.hidden.clone())),
    };
    let meta = SplitMeta::derive(&split.open, &split.hidden);
    let mut interp =
        Interp::new(&split.open, ExecConfig::new()).with_channel(&mut tampering, &meta);
    let tampered = interp.run("main", &[]).expect("still runs");
    assert_ne!(
        honest.outcome.output, tampered.output,
        "tampering with hidden replies must corrupt the computation"
    );
}

#[test]
fn channel_failures_propagate_as_errors() {
    let (_, split) = split_fixture();
    let mut flaky = FlakyChannel {
        inner: InProcessChannel::new(SecureServer::new(split.hidden.clone())),
        calls: 0,
        fail_every: 3,
    };
    let meta = SplitMeta::derive(&split.open, &split.hidden);
    let mut interp = Interp::new(&split.open, ExecConfig::new()).with_channel(&mut flaky, &meta);
    let err = interp.run("main", &[]).expect_err("third call fails");
    assert!(matches!(err, RuntimeError::Channel(msg) if msg.contains("injected")));
}

#[test]
fn state_loss_between_calls_changes_results() {
    // A "secure server" that forgets activation state between calls (e.g. a
    // restarted stateless impostor) cannot emulate the real hidden
    // component: the accumulation in the hidden loop restarts from zero.
    struct AmnesiacChannel {
        hidden: hps_ir::HiddenProgram,
        interactions: u64,
    }
    impl Channel for AmnesiacChannel {
        fn call(
            &mut self,
            component: ComponentId,
            key: u64,
            label: FragLabel,
            args: &[Value],
        ) -> Result<CallReply, RuntimeError> {
            self.interactions += 1;
            // Fresh server per call: no persistent hidden variables.
            let mut server = SecureServer::new(self.hidden.clone());
            let out = server.call(component, key, label, args)?;
            Ok(CallReply {
                value: out.value,
                server_cost: out.cost,
            })
        }
        fn release(&mut self, _: ComponentId, _: u64) -> Result<(), RuntimeError> {
            Ok(())
        }
        fn interactions(&self) -> u64 {
            self.interactions
        }
        fn rtt_cost(&self) -> u64 {
            0
        }
    }

    let (program, split) = split_fixture();
    let honest = run_program(&program, &[]).expect("runs");
    let mut amnesiac = AmnesiacChannel {
        hidden: split.hidden.clone(),
        interactions: 0,
    };
    let meta = SplitMeta::derive(&split.open, &split.hidden);
    let mut interp = Interp::new(&split.open, ExecConfig::new()).with_channel(&mut amnesiac, &meta);
    let outcome = interp.run("main", &[]).expect("runs to completion");
    assert_ne!(
        honest.output, outcome.output,
        "persistent hidden state must matter"
    );
}
