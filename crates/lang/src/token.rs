//! Tokens produced by the lexer.

use crate::error::Span;
use std::fmt;

/// A lexical token with its source position.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

/// The different kinds of tokens.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// An identifier or type name.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A keyword.
    Keyword(Keyword),
    /// A punctuation or operator token.
    Punct(Punct),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("float `{v}`"),
            TokenKind::Keyword(k) => format!("keyword `{k}`"),
            TokenKind::Punct(p) => format!("`{p}`"),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Reserved words.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Keyword {
    /// `fn`
    Fn,
    /// `var`
    Var,
    /// `global`
    Global,
    /// `class`
    Class,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `print`
    Print,
    /// `new`
    New,
    /// `true`
    True,
    /// `false`
    False,
    /// `self`
    SelfKw,
}

impl Keyword {
    /// Looks up a keyword by spelling.
    pub fn lookup(s: &str) -> Option<Keyword> {
        Some(match s {
            "fn" => Keyword::Fn,
            "var" => Keyword::Var,
            "global" => Keyword::Global,
            "class" => Keyword::Class,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "for" => Keyword::For,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "print" => Keyword::Print,
            "new" => Keyword::New,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "self" => Keyword::SelfKw,
            _ => return None,
        })
    }

    /// The source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Fn => "fn",
            Keyword::Var => "var",
            Keyword::Global => "global",
            Keyword::Class => "class",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::While => "while",
            Keyword::For => "for",
            Keyword::Return => "return",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::Print => "print",
            Keyword::New => "new",
            Keyword::True => "true",
            Keyword::False => "false",
            Keyword::SelfKw => "self",
        }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Punctuation and operator tokens.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Punct {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `@` — introduces attributes such as `@allow(lint_id)`.
    At,
}

impl Punct {
    /// The source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::LBracket => "[",
            Punct::RBracket => "]",
            Punct::Semi => ";",
            Punct::Colon => ":",
            Punct::Comma => ",",
            Punct::Dot => ".",
            Punct::Arrow => "->",
            Punct::Assign => "=",
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Star => "*",
            Punct::Slash => "/",
            Punct::Percent => "%",
            Punct::EqEq => "==",
            Punct::NotEq => "!=",
            Punct::Lt => "<",
            Punct::Le => "<=",
            Punct::Gt => ">",
            Punct::Ge => ">=",
            Punct::AndAnd => "&&",
            Punct::OrOr => "||",
            Punct::Bang => "!",
            Punct::At => "@",
        }
    }
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Fn,
            Keyword::Var,
            Keyword::Global,
            Keyword::Class,
            Keyword::If,
            Keyword::Else,
            Keyword::While,
            Keyword::For,
            Keyword::Return,
            Keyword::Break,
            Keyword::Continue,
            Keyword::Print,
            Keyword::New,
            Keyword::True,
            Keyword::False,
            Keyword::SelfKw,
        ] {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::lookup("int"), None);
        assert_eq!(Keyword::lookup("notakeyword"), None);
    }

    #[test]
    fn token_description() {
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::Punct(Punct::Arrow).describe(), "`->`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
