//! Front-end diagnostics.

use std::error::Error;
use std::fmt;

/// Source positions are defined in `hps-ir` (so IR statements can carry
/// them); re-exported here to keep the front end's historical import path.
pub use hps_ir::Span;

/// Which phase produced a [`LangError`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Name resolution / type checking.
    Check,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => write!(f, "lex error"),
            Phase::Parse => write!(f, "parse error"),
            Phase::Check => write!(f, "type error"),
        }
    }
}

/// An error produced while turning MiniLang source into IR.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LangError {
    phase: Phase,
    message: String,
    span: Span,
}

impl LangError {
    /// Creates an error for the given phase.
    pub fn new(phase: Phase, message: impl Into<String>, span: Span) -> LangError {
        LangError {
            phase,
            message: message.into(),
            span,
        }
    }

    /// A lexical error.
    pub fn lex(message: impl Into<String>, span: Span) -> LangError {
        Self::new(Phase::Lex, message, span)
    }

    /// A syntax error.
    pub fn parse(message: impl Into<String>, span: Span) -> LangError {
        Self::new(Phase::Parse, message, span)
    }

    /// A type / resolution error.
    pub fn check(message: impl Into<String>, span: Span) -> LangError {
        Self::new(Phase::Check, message, span)
    }

    /// Human-readable description without the position.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The phase that failed.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> u32 {
        self.span.line
    }

    /// 1-based source column of the error.
    pub fn col(&self) -> u32 {
        self.span.col
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.phase, self.span, self.message)
    }
}

impl Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_position_and_message() {
        let e = LangError::parse("expected ';'", Span::new(3, 7));
        assert_eq!(e.to_string(), "parse error at 3:7: expected ';'");
        assert_eq!(e.line(), 3);
        assert_eq!(e.col(), 7);
        assert_eq!(e.phase(), Phase::Parse);
        assert_eq!(e.message(), "expected ';'");
    }

    #[test]
    fn error_trait_object_compatible() {
        fn take(_: Box<dyn Error + Send + Sync>) {}
        take(Box::new(LangError::lex("bad char", Span::default())));
    }
}
