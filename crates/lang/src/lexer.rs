//! The MiniLang lexer.
//!
//! Hand-written, one-pass, with `//` line comments and `/* ... */` block
//! comments.

use crate::error::{LangError, Span};
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Tokenizes MiniLang source.
///
/// The returned vector always ends with an [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`LangError`] on unknown characters, malformed numbers and
/// unterminated block comments.
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    _source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Lexer<'a> {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            _source: source,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, span: Span) {
        self.tokens.push(Token { kind, span });
    }

    fn run(mut self) -> Result<Vec<Token>, LangError> {
        while let Some(c) = self.peek() {
            let span = self.span();
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '/' if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '/' if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while let Some(c) = self.bump() {
                        if c == '*' && self.peek() == Some('/') {
                            self.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(LangError::lex("unterminated block comment", span));
                    }
                }
                c if c.is_ascii_digit() => self.number(span)?,
                c if c.is_ascii_alphabetic() || c == '_' => self.ident(span),
                _ => self.punct(span)?,
            }
        }
        let span = self.span();
        self.push(TokenKind::Eof, span);
        Ok(self.tokens)
    }

    fn number(&mut self, span: Span) -> Result<(), LangError> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // A fractional part requires a digit after the dot, so `a.0` style
        // member access never lexes as a float.
        let mut is_float = false;
        if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            text.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if self.peek() == Some('e') || self.peek() == Some('E') {
            let save = (self.pos, self.line, self.col);
            let mut exp = String::from("e");
            self.bump();
            if self.peek() == Some('+') || self.peek() == Some('-') {
                exp.push(self.bump().expect("peeked"));
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        exp.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                text.push_str(&exp);
                is_float = true;
            } else {
                // Not an exponent after all (e.g. `3eggs`); rewind.
                (self.pos, self.line, self.col) = save;
            }
        }
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| LangError::lex(format!("malformed float literal `{text}`"), span))?;
            self.push(TokenKind::Float(v), span);
        } else {
            let v: i64 = text.parse().map_err(|_| {
                LangError::lex(format!("integer literal `{text}` out of range"), span)
            })?;
            self.push(TokenKind::Int(v), span);
        }
        Ok(())
    }

    fn ident(&mut self, span: Span) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match Keyword::lookup(&text) {
            Some(kw) => self.push(TokenKind::Keyword(kw), span),
            None => self.push(TokenKind::Ident(text), span),
        }
    }

    fn punct(&mut self, span: Span) -> Result<(), LangError> {
        let c = self.bump().expect("caller peeked");
        let two = |lexer: &mut Lexer<'_>, expect: char, yes: Punct, no: Option<Punct>| {
            if lexer.peek() == Some(expect) {
                lexer.bump();
                Ok(yes)
            } else {
                no.ok_or(())
            }
        };
        let p = match c {
            '(' => Punct::LParen,
            ')' => Punct::RParen,
            '{' => Punct::LBrace,
            '}' => Punct::RBrace,
            '[' => Punct::LBracket,
            ']' => Punct::RBracket,
            ';' => Punct::Semi,
            ':' => Punct::Colon,
            ',' => Punct::Comma,
            '.' => Punct::Dot,
            '@' => Punct::At,
            '+' => Punct::Plus,
            '*' => Punct::Star,
            '/' => Punct::Slash,
            '%' => Punct::Percent,
            '-' => two(self, '>', Punct::Arrow, Some(Punct::Minus)).expect("fallback provided"),
            '=' => two(self, '=', Punct::EqEq, Some(Punct::Assign)).expect("fallback provided"),
            '!' => two(self, '=', Punct::NotEq, Some(Punct::Bang)).expect("fallback provided"),
            '<' => two(self, '=', Punct::Le, Some(Punct::Lt)).expect("fallback provided"),
            '>' => two(self, '=', Punct::Ge, Some(Punct::Gt)).expect("fallback provided"),
            '&' => two(self, '&', Punct::AndAnd, None)
                .map_err(|_| LangError::lex("expected `&&`", span))?,
            '|' => two(self, '|', Punct::OrOr, None)
                .map_err(|_| LangError::lex("expected `||`", span))?,
            other => {
                return Err(LangError::lex(
                    format!("unexpected character `{other}`"),
                    span,
                ))
            }
        };
        self.push(TokenKind::Punct(p), span);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_mixed_tokens() {
        let ks = kinds("fn f(x: int) -> int { return x * 2; }");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Fn));
        assert_eq!(ks[1], TokenKind::Ident("f".into()));
        assert!(ks.contains(&TokenKind::Punct(Punct::Arrow)));
        assert!(ks.contains(&TokenKind::Int(2)));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn float_literals_and_exponents() {
        assert_eq!(kinds("1.5")[0], TokenKind::Float(1.5));
        assert_eq!(kinds("2e3")[0], TokenKind::Float(2000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::Float(0.25));
        // `2.` is int 2 followed by a dot, not a float
        assert_eq!(kinds("2.x")[0], TokenKind::Int(2));
        assert_eq!(kinds("2.x")[1], TokenKind::Punct(Punct::Dot));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("1 // comment\n 2 /* multi\nline */ 3");
        assert_eq!(
            ks,
            vec![
                TokenKind::Int(1),
                TokenKind::Int(2),
                TokenKind::Int(3),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        let ks = kinds("== != <= >= && || = < >");
        assert_eq!(ks[0], TokenKind::Punct(Punct::EqEq));
        assert_eq!(ks[1], TokenKind::Punct(Punct::NotEq));
        assert_eq!(ks[2], TokenKind::Punct(Punct::Le));
        assert_eq!(ks[3], TokenKind::Punct(Punct::Ge));
        assert_eq!(ks[4], TokenKind::Punct(Punct::AndAnd));
        assert_eq!(ks[5], TokenKind::Punct(Punct::OrOr));
        assert_eq!(ks[6], TokenKind::Punct(Punct::Assign));
        assert_eq!(ks[7], TokenKind::Punct(Punct::Lt));
        assert_eq!(ks[8], TokenKind::Punct(Punct::Gt));
    }

    #[test]
    fn at_sign_lexes_as_punct() {
        let ks = kinds("@allow(x)");
        assert_eq!(ks[0], TokenKind::Punct(Punct::At));
        assert_eq!(ks[1], TokenKind::Ident("allow".into()));
    }

    #[test]
    fn position_tracking() {
        let toks = lex("fn\n  x").unwrap();
        assert_eq!(toks[0].span, Span::new(1, 1));
        assert_eq!(toks[1].span, Span::new(2, 3));
    }

    #[test]
    fn error_on_unknown_char() {
        let err = lex("let a = #;").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn error_on_single_ampersand() {
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn error_on_unterminated_comment() {
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn keywords_vs_identifiers() {
        let ks = kinds("whilex while_ while");
        assert_eq!(ks[0], TokenKind::Ident("whilex".into()));
        assert_eq!(ks[1], TokenKind::Ident("while_".into()));
        assert_eq!(ks[2], TokenKind::Keyword(Keyword::While));
    }
}
