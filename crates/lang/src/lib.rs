//! # hps-lang — the MiniLang front end
//!
//! MiniLang is the small imperative language this reproduction uses in place
//! of Java bytecode: C-like syntax, scalar types `int`/`float`/`bool`,
//! arrays, globals, classes with fields and methods, `if`/`while`/`for`
//! control flow and a handful of builtins (`len`, `exp`, `log`, `sqrt`,
//! `abs`, `min`, `max`, `floor`, plus the casts `int(..)` and `float(..)`).
//!
//! The pipeline is conventional: [`lexer`] → [`parser`] (AST, [`ast`]) →
//! [`lower`] (name resolution + type checking → `hps_ir::Program`). The
//! one-call entry point is [`parse`].
//!
//! # Examples
//!
//! ```
//! let program = hps_lang::parse(r#"
//!     global total: int;
//!
//!     fn add(x: int, y: int) -> int {
//!         return x + y;
//!     }
//!
//!     fn main() {
//!         total = add(2, 3);
//!         print(total);
//!     }
//! "#)?;
//! assert_eq!(program.functions.len(), 2);
//! # Ok::<(), hps_lang::LangError>(())
//! ```
//!
//! # Grammar (informal)
//!
//! ```text
//! program  := (global | fn | class)*
//! global   := "global" IDENT ":" type ("=" literal | "=" "new" scalar "[" INT "]")? ";"
//! class    := "class" IDENT "{" (IDENT ":" type ";")* fn* "}"
//! fn       := "fn" IDENT "(" (IDENT ":" type),* ")" ("->" type)? block
//! type     := ("int" | "float" | "bool" | IDENT) "[]"*
//! stmt     := "var" IDENT ":" type ("=" expr)? ";"
//!           | place "=" expr ";"            | expr ";"
//!           | "if" "(" expr ")" block ("else" (block | if-stmt))?
//!           | "while" "(" expr ")" block
//!           | "for" "(" simple? ";" expr? ";" simple? ")" block
//!           | "return" expr? ";" | "break" ";" | "continue" ";"
//!           | "print" "(" expr ")" ";"
//! expr     := precedence climbing over || && == != < <= > >= + - * / % ! -
//! primary  := literal | IDENT | "self" | "(" expr ")" | "new" ...
//!           | primary "[" expr "]" | primary "." IDENT ( "(" args ")" )?
//!           | IDENT "(" args ")"
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod token;

pub use error::LangError;

use hps_ir::Program;

/// Parses, type checks and lowers MiniLang source into an IR [`Program`].
///
/// Statement ids are already assigned (the lowering calls
/// [`Program::renumber_all`]).
///
/// # Errors
///
/// Returns a [`LangError`] carrying a message and a source position for
/// lexical errors, syntax errors and type errors.
pub fn parse(source: &str) -> Result<Program, LangError> {
    let tokens = lexer::lex(source)?;
    let ast = parser::parse_tokens(&tokens)?;
    lower::lower(&ast)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_smoke() {
        let p = parse("fn main() { print(1 + 2 * 3); }").expect("parses");
        assert_eq!(p.functions.len(), 1);
        assert!(p.entry().is_some());
    }

    #[test]
    fn parse_error_reports_position() {
        let err = parse("fn main( { }").unwrap_err();
        assert!(err.line() >= 1);
        let text = err.to_string();
        assert!(text.contains("expected"), "got: {text}");
    }
}
