//! Recursive-descent parser producing the [`ast`](crate::ast).

use crate::ast::*;
use crate::error::{LangError, Span};
use crate::token::{Keyword, Punct, Token, TokenKind};
use hps_ir::{BinOp, UnOp};

/// Parses a token stream (as produced by [`lex`](crate::lexer::lex)) into an
/// AST.
///
/// # Errors
///
/// Returns a [`LangError`] describing the first syntax error.
pub fn parse_tokens(tokens: &[Token]) -> Result<AProgram, LangError> {
    Parser { tokens, pos: 0 }.program()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> &Token {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if *self.peek() == TokenKind::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if *self.peek() == TokenKind::Keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), LangError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(LangError::parse(
                format!("expected `{p}`, found {}", self.peek().describe()),
                self.span(),
            ))
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<(), LangError> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(LangError::parse(
                format!("expected `{k}`, found {}", self.peek().describe()),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, LangError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(LangError::parse(
                format!("expected identifier, found {}", other.describe()),
                self.span(),
            )),
        }
    }

    /// Parses zero or more `@allow(lint_id, ...)` attributes, returning the
    /// collected lint ids.
    fn attrs(&mut self) -> Result<Vec<String>, LangError> {
        let mut allows = Vec::new();
        while self.eat_punct(Punct::At) {
            let span = self.span();
            let name = self.expect_ident()?;
            if name != "allow" {
                return Err(LangError::parse(
                    format!("unknown attribute `@{name}` (only `@allow(lint_id)` is supported)"),
                    span,
                ));
            }
            self.expect_punct(Punct::LParen)?;
            loop {
                allows.push(self.expect_ident()?);
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma)?;
            }
        }
        Ok(allows)
    }

    fn program(&mut self) -> Result<AProgram, LangError> {
        let mut prog = AProgram::default();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Keyword(Keyword::Global) => prog.globals.push(self.global()?),
                TokenKind::Keyword(Keyword::Fn) => prog.funcs.push(self.function()?),
                TokenKind::Keyword(Keyword::Class) => prog.classes.push(self.class()?),
                TokenKind::Punct(Punct::At) => {
                    let allows = self.attrs()?;
                    if *self.peek() != TokenKind::Keyword(Keyword::Fn) {
                        return Err(LangError::parse(
                            "`@allow` attributes at top level must precede a `fn`",
                            self.span(),
                        ));
                    }
                    let mut f = self.function()?;
                    f.allows = allows;
                    prog.funcs.push(f);
                }
                other => {
                    return Err(LangError::parse(
                        format!(
                            "expected `global`, `fn` or `class` at top level, found {}",
                            other.describe()
                        ),
                        self.span(),
                    ))
                }
            }
        }
        Ok(prog)
    }

    fn global(&mut self) -> Result<AGlobal, LangError> {
        let span = self.span();
        self.expect_keyword(Keyword::Global)?;
        let name = self.expect_ident()?;
        self.expect_punct(Punct::Colon)?;
        let ty = self.ty()?;
        let mut init = None;
        let mut array_len = None;
        if self.eat_punct(Punct::Assign) {
            if self.eat_keyword(Keyword::New) {
                // new T[N] with a literal length
                let _elem = self.ty_base()?;
                self.expect_punct(Punct::LBracket)?;
                match self.peek().clone() {
                    TokenKind::Int(n) if n >= 0 => {
                        self.bump();
                        array_len = Some(n);
                    }
                    other => {
                        return Err(LangError::parse(
                            format!(
                            "global array length must be a non-negative integer literal, found {}",
                            other.describe()
                        ),
                            self.span(),
                        ))
                    }
                }
                self.expect_punct(Punct::RBracket)?;
            } else {
                init = Some(self.expr()?);
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(AGlobal {
            name,
            ty,
            init,
            array_len,
            span,
        })
    }

    fn class(&mut self) -> Result<AClass, LangError> {
        let span = self.span();
        self.expect_keyword(Keyword::Class)?;
        let name = self.expect_ident()?;
        self.expect_punct(Punct::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Punct(Punct::RBrace) => {
                    self.bump();
                    break;
                }
                TokenKind::Keyword(Keyword::Fn) => methods.push(self.function()?),
                TokenKind::Punct(Punct::At) => {
                    let allows = self.attrs()?;
                    if *self.peek() != TokenKind::Keyword(Keyword::Fn) {
                        return Err(LangError::parse(
                            "`@allow` attributes in a class body must precede a `fn`",
                            self.span(),
                        ));
                    }
                    let mut m = self.function()?;
                    m.allows = allows;
                    methods.push(m);
                }
                TokenKind::Ident(_) => {
                    let fspan = self.span();
                    let fname = self.expect_ident()?;
                    self.expect_punct(Punct::Colon)?;
                    let fty = self.ty()?;
                    self.expect_punct(Punct::Semi)?;
                    fields.push((fname, fty, fspan));
                }
                other => {
                    return Err(LangError::parse(
                        format!(
                            "expected field, method or `}}` in class body, found {}",
                            other.describe()
                        ),
                        self.span(),
                    ))
                }
            }
        }
        Ok(AClass {
            name,
            fields,
            methods,
            span,
        })
    }

    fn function(&mut self) -> Result<AFunc, LangError> {
        let span = self.span();
        self.expect_keyword(Keyword::Fn)?;
        let name = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                let pspan = self.span();
                let pname = self.expect_ident()?;
                self.expect_punct(Punct::Colon)?;
                let pty = self.ty()?;
                params.push((pname, pty, pspan));
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma)?;
            }
        }
        let ret = if self.eat_punct(Punct::Arrow) {
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(AFunc {
            name,
            params,
            ret,
            body,
            span,
            allows: Vec::new(),
        })
    }

    fn ty_base(&mut self) -> Result<AType, LangError> {
        let name = self.expect_ident()?;
        Ok(match name.as_str() {
            "int" => AType::Int,
            "float" => AType::Float,
            "bool" => AType::Bool,
            _ => AType::Named(name),
        })
    }

    fn ty(&mut self) -> Result<AType, LangError> {
        let mut t = self.ty_base()?;
        while *self.peek() == TokenKind::Punct(Punct::LBracket) {
            self.bump();
            self.expect_punct(Punct::RBracket)?;
            t = AType::Array(Box::new(t));
        }
        Ok(t)
    }

    fn block(&mut self) -> Result<Vec<AStmt>, LangError> {
        self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if *self.peek() == TokenKind::Eof {
                return Err(LangError::parse(
                    "unclosed block, expected `}`",
                    self.span(),
                ));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<AStmt, LangError> {
        let allows = self.attrs()?;
        let mut s = self.stmt_inner()?;
        s.allows = allows;
        Ok(s)
    }

    fn stmt_inner(&mut self) -> Result<AStmt, LangError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Var) => {
                self.bump();
                let name = self.expect_ident()?;
                self.expect_punct(Punct::Colon)?;
                let ty = self.ty()?;
                let init = if self.eat_punct(Punct::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect_punct(Punct::Semi)?;
                Ok(AStmt::new(AStmtKind::VarDecl { name, ty, init }, span))
            }
            TokenKind::Keyword(Keyword::If) => self.if_stmt(),
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = self.block()?;
                Ok(AStmt::new(AStmtKind::While { cond, body }, span))
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect_punct(Punct::Semi)?;
                let cond = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if *self.peek() == TokenKind::Punct(Punct::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect_punct(Punct::RParen)?;
                let body = self.block()?;
                Ok(AStmt::new(
                    AStmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                    span,
                ))
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::Semi)?;
                Ok(AStmt::new(AStmtKind::Return(value), span))
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(AStmt::new(AStmtKind::Break, span))
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(AStmt::new(AStmtKind::Continue, span))
            }
            TokenKind::Keyword(Keyword::Print) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                Ok(AStmt::new(AStmtKind::Print(e), span))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect_punct(Punct::Semi)?;
                Ok(s)
            }
        }
    }

    /// An assignment or expression statement, without the trailing `;`
    /// (shared between statement position and `for` headers).
    fn simple_stmt(&mut self) -> Result<AStmt, LangError> {
        let span = self.span();
        let e = self.expr()?;
        if self.eat_punct(Punct::Assign) {
            let value = self.expr()?;
            Ok(AStmt::new(AStmtKind::Assign { place: e, value }, span))
        } else {
            Ok(AStmt::new(AStmtKind::Expr(e), span))
        }
    }

    fn if_stmt(&mut self) -> Result<AStmt, LangError> {
        let span = self.span();
        self.expect_keyword(Keyword::If)?;
        self.expect_punct(Punct::LParen)?;
        let cond = self.expr()?;
        self.expect_punct(Punct::RParen)?;
        let then_blk = self.block()?;
        let else_blk = if self.eat_keyword(Keyword::Else) {
            if *self.peek() == TokenKind::Keyword(Keyword::If) {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(AStmt::new(
            AStmtKind::If {
                cond,
                then_blk,
                else_blk,
            },
            span,
        ))
    }

    fn expr(&mut self) -> Result<AExpr, LangError> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<AExpr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct(Punct::OrOr) => BinOp::Or,
                TokenKind::Punct(Punct::AndAnd) => BinOp::And,
                TokenKind::Punct(Punct::EqEq) => BinOp::Eq,
                TokenKind::Punct(Punct::NotEq) => BinOp::Ne,
                TokenKind::Punct(Punct::Lt) => BinOp::Lt,
                TokenKind::Punct(Punct::Le) => BinOp::Le,
                TokenKind::Punct(Punct::Gt) => BinOp::Gt,
                TokenKind::Punct(Punct::Ge) => BinOp::Ge,
                TokenKind::Punct(Punct::Plus) => BinOp::Add,
                TokenKind::Punct(Punct::Minus) => BinOp::Sub,
                TokenKind::Punct(Punct::Star) => BinOp::Mul,
                TokenKind::Punct(Punct::Slash) => BinOp::Div,
                TokenKind::Punct(Punct::Percent) => BinOp::Rem,
                _ => break,
            };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            let span = self.span();
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = AExpr::new(
                AExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<AExpr, LangError> {
        let span = self.span();
        if self.eat_punct(Punct::Minus) {
            let arg = self.unary_expr()?;
            return Ok(AExpr::new(
                AExprKind::Unary {
                    op: UnOp::Neg,
                    arg: Box::new(arg),
                },
                span,
            ));
        }
        if self.eat_punct(Punct::Bang) {
            let arg = self.unary_expr()?;
            return Ok(AExpr::new(
                AExprKind::Unary {
                    op: UnOp::Not,
                    arg: Box::new(arg),
                },
                span,
            ));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<AExpr, LangError> {
        let mut e = self.primary_expr()?;
        loop {
            let span = self.span();
            if self.eat_punct(Punct::LBracket) {
                let index = self.expr()?;
                self.expect_punct(Punct::RBracket)?;
                e = AExpr::new(
                    AExprKind::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                    },
                    span,
                );
            } else if self.eat_punct(Punct::Dot) {
                let name = self.expect_ident()?;
                e = AExpr::new(
                    AExprKind::Field {
                        obj: Box::new(e),
                        name,
                    },
                    span,
                );
                if *self.peek() == TokenKind::Punct(Punct::LParen) {
                    let args = self.call_args()?;
                    e = AExpr::new(
                        AExprKind::Call {
                            callee: Box::new(e),
                            args,
                        },
                        span,
                    );
                }
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn call_args(&mut self) -> Result<Vec<AExpr>, LangError> {
        self.expect_punct(Punct::LParen)?;
        let mut args = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            loop {
                args.push(self.expr()?);
                if self.eat_punct(Punct::RParen) {
                    break;
                }
                self.expect_punct(Punct::Comma)?;
            }
        }
        Ok(args)
    }

    fn primary_expr(&mut self) -> Result<AExpr, LangError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(AExpr::new(AExprKind::Int(v), span))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(AExpr::new(AExprKind::Float(v), span))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(AExpr::new(AExprKind::Bool(true), span))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(AExpr::new(AExprKind::Bool(false), span))
            }
            TokenKind::Keyword(Keyword::SelfKw) => {
                self.bump();
                Ok(AExpr::new(AExprKind::SelfRef, span))
            }
            TokenKind::Keyword(Keyword::New) => {
                self.bump();
                let base = self.ty_base()?;
                if self.eat_punct(Punct::LBracket) {
                    let len = self.expr()?;
                    self.expect_punct(Punct::RBracket)?;
                    Ok(AExpr::new(
                        AExprKind::NewArray {
                            elem: base,
                            len: Box::new(len),
                        },
                        span,
                    ))
                } else if *self.peek() == TokenKind::Punct(Punct::LParen) {
                    self.bump();
                    self.expect_punct(Punct::RParen)?;
                    match base {
                        AType::Named(name) => Ok(AExpr::new(AExprKind::NewObject(name), span)),
                        _ => Err(LangError::parse("`new T()` requires a class name", span)),
                    }
                } else {
                    Err(LangError::parse(
                        "expected `[len]` or `()` after `new T`",
                        self.span(),
                    ))
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if *self.peek() == TokenKind::Punct(Punct::LParen) {
                    let args = self.call_args()?;
                    Ok(AExpr::new(
                        AExprKind::Call {
                            callee: Box::new(AExpr::new(AExprKind::Ident(name), span)),
                            args,
                        },
                        span,
                    ))
                } else {
                    Ok(AExpr::new(AExprKind::Ident(name), span))
                }
            }
            other => Err(LangError::parse(
                format!("expected expression, found {}", other.describe()),
                span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> AProgram {
        parse_tokens(&lex(src).expect("lexes")).expect("parses")
    }

    fn parse_err(src: &str) -> LangError {
        match parse_tokens(&lex(src).expect("lexes")) {
            Ok(_) => panic!("expected parse error for: {src}"),
            Err(e) => e,
        }
    }

    #[test]
    fn parses_function_with_params_and_return() {
        let p = parse("fn f(x: int, a: float[]) -> int { return x; }");
        assert_eq!(p.funcs.len(), 1);
        let f = &p.funcs[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1].1, AType::Array(Box::new(AType::Float)));
        assert_eq!(f.ret, Some(AType::Int));
    }

    #[test]
    fn parses_precedence() {
        let p = parse("fn f() -> int { return 1 + 2 * 3; }");
        match &p.funcs[0].body[0].kind {
            AStmtKind::Return(Some(e)) => match &e.kind {
                AExprKind::Binary { op, rhs, .. } => {
                    assert_eq!(*op, BinOp::Add);
                    assert!(matches!(rhs.kind, AExprKind::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("expected binary, got {other:?}"),
            },
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn left_associativity() {
        let p = parse("fn f() -> int { return 10 - 3 - 2; }");
        match &p.funcs[0].body[0].kind {
            AStmtKind::Return(Some(e)) => match &e.kind {
                AExprKind::Binary { op, lhs, .. } => {
                    assert_eq!(*op, BinOp::Sub);
                    assert!(matches!(lhs.kind, AExprKind::Binary { op: BinOp::Sub, .. }));
                }
                other => panic!("expected binary, got {other:?}"),
            },
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse("fn f(x: int) { if (x > 0) { } else if (x < 0) { } else { } }");
        match &p.funcs[0].body[0].kind {
            AStmtKind::If { else_blk, .. } => {
                assert_eq!(else_blk.len(), 1);
                assert!(matches!(else_blk[0].kind, AStmtKind::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_for_loop() {
        let p = parse("fn f() { for (i = 0; i < 10; i = i + 1) { print(i); } }");
        assert!(matches!(p.funcs[0].body[0].kind, AStmtKind::For { .. }));
    }

    #[test]
    fn parses_class_with_fields_and_methods() {
        let p = parse(
            "class Point { x: int; y: int; fn norm2() -> int { return self.x * self.x + self.y * self.y; } }",
        );
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.classes[0].fields.len(), 2);
        assert_eq!(p.classes[0].methods.len(), 1);
    }

    #[test]
    fn parses_method_call_and_field_chain() {
        let p = parse("fn f(p: Point) -> int { return p.norm2() + p.x; }");
        match &p.funcs[0].body[0].kind {
            AStmtKind::Return(Some(e)) => match &e.kind {
                AExprKind::Binary { lhs, rhs, .. } => {
                    assert!(matches!(lhs.kind, AExprKind::Call { .. }));
                    assert!(matches!(rhs.kind, AExprKind::Field { .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_globals_scalar_and_array() {
        let p = parse("global n: int = 5; global buf: int[] = new int[16];");
        assert_eq!(p.globals.len(), 2);
        assert!(p.globals[0].init.is_some());
        assert_eq!(p.globals[1].array_len, Some(16));
    }

    #[test]
    fn parses_new_array_and_object() {
        let p = parse("fn f() { var a: int[] = new int[10]; var p: Point = new Point(); }");
        assert_eq!(p.funcs[0].body.len(), 2);
    }

    #[test]
    fn parses_array_assignment() {
        let p = parse("fn f(a: int[]) { a[0] = a[1] + 1; }");
        assert!(matches!(p.funcs[0].body[0].kind, AStmtKind::Assign { .. }));
    }

    #[test]
    fn parses_allow_attributes() {
        let p = parse(
            "@allow(weak_ilp_constant)
             fn f(x: int) -> int {
                 @allow(unused_leak, weak_ilp_linear)
                 var y: int = x + 1;
                 return y;
             }
             class C { v: int; @allow(transferable_fragment) fn get() -> int { return self.v; } }",
        );
        assert_eq!(p.funcs[0].allows, vec!["weak_ilp_constant"]);
        assert_eq!(
            p.funcs[0].body[0].allows,
            vec!["unused_leak", "weak_ilp_linear"]
        );
        assert!(p.funcs[0].body[1].allows.is_empty());
        assert_eq!(
            p.classes[0].methods[0].allows,
            vec!["transferable_fragment"]
        );
    }

    #[test]
    fn error_on_unknown_attribute() {
        let e = parse_err("@inline fn f() { }");
        assert!(e.to_string().contains("unknown attribute"), "got {e}");
    }

    #[test]
    fn error_on_attribute_before_global() {
        let e = parse_err("@allow(x) global g: int;");
        assert!(e.to_string().contains("must precede a `fn`"), "got {e}");
    }

    #[test]
    fn error_on_missing_semicolon() {
        let e = parse_err("fn f() { return 1 }");
        assert!(e.to_string().contains("expected `;`"), "got {e}");
    }

    #[test]
    fn error_on_unclosed_block() {
        let e = parse_err("fn f() { ");
        assert!(e.to_string().contains("unclosed block"), "got {e}");
    }

    #[test]
    fn error_on_bad_top_level() {
        let e = parse_err("return 1;");
        assert!(e.to_string().contains("top level"), "got {e}");
    }

    #[test]
    fn error_on_new_scalar_object() {
        let e = parse_err("fn f() { var x: int = new int(); }");
        assert!(e.to_string().contains("class name"), "got {e}");
    }
}
