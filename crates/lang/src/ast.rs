//! The abstract syntax tree produced by the parser.
//!
//! Names are unresolved strings; the [`lower`](crate::lower) pass resolves
//! them against the program's globals, functions, classes and local scopes
//! and performs type checking.

use crate::error::Span;

/// A parsed type annotation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AType {
    /// `int`
    Int,
    /// `float`
    Float,
    /// `bool`
    Bool,
    /// `T[]`
    Array(Box<AType>),
    /// A class name.
    Named(String),
}

/// A whole source file.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct AProgram {
    /// Global variable declarations.
    pub globals: Vec<AGlobal>,
    /// Free functions.
    pub funcs: Vec<AFunc>,
    /// Class definitions.
    pub classes: Vec<AClass>,
}

/// `global name: ty (= init)?;`
#[derive(Clone, PartialEq, Debug)]
pub struct AGlobal {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: AType,
    /// Scalar initializer literal.
    pub init: Option<AExpr>,
    /// Element count for `= new T[N]` array globals.
    pub array_len: Option<i64>,
    /// Source position.
    pub span: Span,
}

/// A class with fields and methods.
#[derive(Clone, PartialEq, Debug)]
pub struct AClass {
    /// Class name.
    pub name: String,
    /// `name: ty;` field declarations.
    pub fields: Vec<(String, AType, Span)>,
    /// Methods (receive an implicit `self`).
    pub methods: Vec<AFunc>,
    /// Source position.
    pub span: Span,
}

/// A function definition.
#[derive(Clone, PartialEq, Debug)]
pub struct AFunc {
    /// Function name.
    pub name: String,
    /// `(name, type)` parameters.
    pub params: Vec<(String, AType, Span)>,
    /// Return type; `None` for procedures.
    pub ret: Option<AType>,
    /// Body statements.
    pub body: Vec<AStmt>,
    /// Source position.
    pub span: Span,
    /// Audit lint ids suppressed via `@allow(...)` attributes on the `fn`.
    pub allows: Vec<String>,
}

/// A statement with position.
#[derive(Clone, PartialEq, Debug)]
pub struct AStmt {
    /// What the statement does.
    pub kind: AStmtKind,
    /// Source position.
    pub span: Span,
    /// Audit lint ids suppressed via `@allow(...)` attributes preceding the
    /// statement.
    pub allows: Vec<String>,
}

/// Statement forms.
#[derive(Clone, PartialEq, Debug)]
pub enum AStmtKind {
    /// `var name: ty (= init)?;`
    VarDecl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: AType,
        /// Optional initializer.
        init: Option<AExpr>,
    },
    /// `place = value;`
    Assign {
        /// Assignment target (validated as a place during lowering).
        place: AExpr,
        /// Assigned value.
        value: AExpr,
    },
    /// `if (cond) {..} (else {..})?`
    If {
        /// Condition.
        cond: AExpr,
        /// Then branch.
        then_blk: Vec<AStmt>,
        /// Else branch (empty when absent).
        else_blk: Vec<AStmt>,
    },
    /// `while (cond) {..}`
    While {
        /// Condition.
        cond: AExpr,
        /// Body.
        body: Vec<AStmt>,
    },
    /// `for (init; cond; step) {..}` — desugared to `while` in lowering.
    For {
        /// Initialization statement.
        init: Option<Box<AStmt>>,
        /// Condition (`true` when absent).
        cond: Option<AExpr>,
        /// Step statement.
        step: Option<Box<AStmt>>,
        /// Body.
        body: Vec<AStmt>,
    },
    /// `return expr?;`
    Return(Option<AExpr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `print(expr);`
    Print(AExpr),
    /// A bare expression statement (a call).
    Expr(AExpr),
}

/// An expression with position.
#[derive(Clone, PartialEq, Debug)]
pub struct AExpr {
    /// The expression form.
    pub kind: AExprKind,
    /// Source position.
    pub span: Span,
}

/// Binary operators (front-end view; mapped 1:1 onto `hps_ir::BinOp`).
pub type ABinOp = hps_ir::BinOp;
/// Unary operators (front-end view; mapped 1:1 onto `hps_ir::UnOp`).
pub type AUnOp = hps_ir::UnOp;

/// Expression forms.
#[derive(Clone, PartialEq, Debug)]
pub enum AExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Bool literal.
    Bool(bool),
    /// Unresolved name (local, global, or function in call position).
    Ident(String),
    /// `self`
    SelfRef,
    /// `base[index]`
    Index {
        /// Array expression.
        base: Box<AExpr>,
        /// Index expression.
        index: Box<AExpr>,
    },
    /// `obj.name` (field access) — also the callee shape of method calls.
    Field {
        /// Receiver.
        obj: Box<AExpr>,
        /// Member name.
        name: String,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: AUnOp,
        /// Operand.
        arg: Box<AExpr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: ABinOp,
        /// Left operand.
        lhs: Box<AExpr>,
        /// Right operand.
        rhs: Box<AExpr>,
    },
    /// `callee(args)` — `callee` is an [`AExprKind::Ident`] (free function
    /// or builtin) or an [`AExprKind::Field`] (method call).
    Call {
        /// Callee expression.
        callee: Box<AExpr>,
        /// Arguments.
        args: Vec<AExpr>,
    },
    /// `new elem[len]`
    NewArray {
        /// Element type.
        elem: AType,
        /// Length expression.
        len: Box<AExpr>,
    },
    /// `new Class()`
    NewObject(String),
}

impl AExpr {
    /// Convenience constructor.
    pub fn new(kind: AExprKind, span: Span) -> AExpr {
        AExpr { kind, span }
    }
}

impl AStmt {
    /// Convenience constructor (no suppressions).
    pub fn new(kind: AStmtKind, span: Span) -> AStmt {
        AStmt {
            kind,
            span,
            allows: Vec::new(),
        }
    }
}
