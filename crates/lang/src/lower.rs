//! Name resolution, type checking and AST → IR lowering.
//!
//! Two phases:
//!
//! 1. **Declare** — collect globals, classes (fields + method signatures)
//!    and free-function signatures so bodies can reference anything declared
//!    anywhere in the file.
//! 2. **Lower** — translate each body, resolving names innermost-first
//!    (locals shadow globals) and checking types as it goes. `for` loops are
//!    desugared to `while`.
//!
//! MiniLang typing rules are strict: no implicit numeric conversions (use
//! `int(..)` / `float(..)`), conditions must be `bool`, `%` is `int`-only,
//! and array elements are always scalars.

use crate::ast::*;
use crate::error::{LangError, Span};
use std::collections::HashMap;

use hps_ir::{
    BinOp, Builtin, Callee, ClassDef, ClassId, Expr, FieldDecl, FuncId, Function, GlobalId,
    LocalId, Place, Program, Stmt, StmtKind, Ty, UnOp, Value,
};

/// Lowers a parsed program to IR, performing name resolution and type
/// checking. Statement ids are assigned before returning.
///
/// # Errors
///
/// Returns a [`LangError`] for duplicate or unknown names, type mismatches,
/// misuse of `break`/`continue`/`self`, and other static errors.
pub fn lower(ast: &AProgram) -> Result<Program, LangError> {
    Lowerer::new().run(ast)
}

struct FuncSig {
    params: Vec<Ty>,
    ret: Ty,
}

struct Lowerer {
    program: Program,
    globals: HashMap<String, GlobalId>,
    classes: HashMap<String, ClassId>,
    free_funcs: HashMap<String, FuncId>,
    methods: HashMap<(ClassId, String), FuncId>,
    sigs: Vec<FuncSig>,
}

struct BodyCtx {
    func: FuncId,
    locals: HashMap<String, LocalId>,
    loop_depth: usize,
    /// Depth of the innermost `for` loop, to reject `continue` whose
    /// desugaring would skip the step statement.
    for_depth: Option<usize>,
}

impl Lowerer {
    fn new() -> Lowerer {
        Lowerer {
            program: Program::new(),
            globals: HashMap::new(),
            classes: HashMap::new(),
            free_funcs: HashMap::new(),
            methods: HashMap::new(),
            sigs: Vec::new(),
        }
    }

    fn run(mut self, ast: &AProgram) -> Result<Program, LangError> {
        self.declare_classes(ast)?;
        self.declare_globals(ast)?;
        self.declare_functions(ast)?;
        // Lower bodies. Function ids were assigned in declaration order:
        // free functions first, then methods class by class.
        let mut bodies: Vec<(&AFunc, FuncId)> = Vec::new();
        for f in &ast.funcs {
            let id = self.free_funcs[&f.name];
            bodies.push((f, id));
        }
        for class in &ast.classes {
            let cid = self.classes[&class.name];
            for m in &class.methods {
                let id = self.methods[&(cid, m.name.clone())];
                bodies.push((m, id));
            }
        }
        for (afunc, id) in bodies {
            self.lower_body(afunc, id)?;
        }
        self.program.renumber_all();
        Ok(self.program)
    }

    fn declare_classes(&mut self, ast: &AProgram) -> Result<(), LangError> {
        // First the names (so fields may reference other classes)…
        for class in &ast.classes {
            if self.classes.contains_key(&class.name) {
                return Err(LangError::check(
                    format!("duplicate class `{}`", class.name),
                    class.span,
                ));
            }
            let id = ClassId::new(self.program.classes.len());
            self.program.classes.push(ClassDef {
                name: class.name.clone(),
                fields: Vec::new(),
                methods: Vec::new(),
            });
            self.classes.insert(class.name.clone(), id);
        }
        // …then the fields.
        for class in &ast.classes {
            let id = self.classes[&class.name];
            let mut fields = Vec::new();
            let mut seen = HashMap::new();
            for (fname, fty, fspan) in &class.fields {
                if seen.insert(fname.clone(), ()).is_some() {
                    return Err(LangError::check(
                        format!("duplicate field `{fname}` in class `{}`", class.name),
                        *fspan,
                    ));
                }
                fields.push(FieldDecl {
                    name: fname.clone(),
                    ty: self.resolve_type(fty, *fspan)?,
                });
            }
            self.program.classes[id.index()].fields = fields;
        }
        Ok(())
    }

    fn declare_globals(&mut self, ast: &AProgram) -> Result<(), LangError> {
        for g in &ast.globals {
            if self.globals.contains_key(&g.name) {
                return Err(LangError::check(
                    format!("duplicate global `{}`", g.name),
                    g.span,
                ));
            }
            let ty = self.resolve_type(&g.ty, g.span)?;
            if let Ty::Object(_) = ty {
                return Err(LangError::check(
                    "globals of class type are not supported",
                    g.span,
                ));
            }
            let init = match &g.init {
                None => None,
                Some(e) => Some(self.const_literal(e, &ty)?),
            };
            if g.array_len.is_some() && !matches!(ty, Ty::Array(_)) {
                return Err(LangError::check(
                    format!(
                        "global `{}` initialized with `new T[..]` must have array type",
                        g.name
                    ),
                    g.span,
                ));
            }
            if matches!(ty, Ty::Array(_)) && g.array_len.is_none() {
                return Err(LangError::check(
                    format!(
                        "array global `{}` needs a length: `= new {}[N]`",
                        g.name,
                        match &ty {
                            Ty::Array(e) => e.to_string(),
                            _ => unreachable!(),
                        }
                    ),
                    g.span,
                ));
            }
            let gid = GlobalId::new(self.program.globals.len());
            self.program.globals.push(hps_ir::GlobalDecl {
                name: g.name.clone(),
                ty,
                init,
                array_len: g.array_len.map(|n| n as usize),
            });
            self.globals.insert(g.name.clone(), gid);
        }
        Ok(())
    }

    fn const_literal(&self, e: &AExpr, expect: &Ty) -> Result<Value, LangError> {
        let v = match (&e.kind, expect) {
            (AExprKind::Int(v), Ty::Int) => Value::Int(*v),
            (AExprKind::Float(v), Ty::Float) => Value::Float(*v),
            (AExprKind::Bool(v), Ty::Bool) => Value::Bool(*v),
            (AExprKind::Unary { op: UnOp::Neg, arg }, _) => match (&arg.kind, expect) {
                (AExprKind::Int(v), Ty::Int) => Value::Int(-*v),
                (AExprKind::Float(v), Ty::Float) => Value::Float(-*v),
                _ => {
                    return Err(LangError::check(
                        "global initializer must be a literal of the declared type",
                        e.span,
                    ))
                }
            },
            _ => {
                return Err(LangError::check(
                    "global initializer must be a literal of the declared type",
                    e.span,
                ))
            }
        };
        Ok(v)
    }

    fn declare_functions(&mut self, ast: &AProgram) -> Result<(), LangError> {
        let declare =
            |this: &mut Self, f: &AFunc, class: Option<ClassId>| -> Result<FuncId, LangError> {
                if Builtin::from_name(&f.name).is_some() || f.name == "print" {
                    return Err(LangError::check(
                        format!("`{}` is a builtin and cannot be redefined", f.name),
                        f.span,
                    ));
                }
                let ret = match &f.ret {
                    None => Ty::Void,
                    Some(t) => {
                        let t = this.resolve_type(t, f.span)?;
                        if !t.is_scalar() && !matches!(t, Ty::Array(_) | Ty::Object(_)) {
                            return Err(LangError::check("invalid return type", f.span));
                        }
                        t
                    }
                };
                let mut func = Function::new(f.name.clone(), ret.clone());
                func.class = class;
                func.allows = f.allows.clone();
                if let Some(cid) = class {
                    func.add_param("self", Ty::Object(cid));
                }
                let mut sig_params = Vec::new();
                if let Some(cid) = class {
                    sig_params.push(Ty::Object(cid));
                }
                for (pname, pty, pspan) in &f.params {
                    let t = this.resolve_type(pty, *pspan)?;
                    sig_params.push(t.clone());
                    func.add_param(pname.clone(), t);
                }
                let id = this.program.add_function(func);
                this.sigs.push(FuncSig {
                    params: sig_params,
                    ret,
                });
                Ok(id)
            };

        for f in &ast.funcs {
            if self.free_funcs.contains_key(&f.name) {
                return Err(LangError::check(
                    format!("duplicate function `{}`", f.name),
                    f.span,
                ));
            }
            let id = declare(self, f, None)?;
            self.free_funcs.insert(f.name.clone(), id);
        }
        for class in &ast.classes {
            let cid = self.classes[&class.name];
            for m in &class.methods {
                if self.methods.contains_key(&(cid, m.name.clone())) {
                    return Err(LangError::check(
                        format!("duplicate method `{}` in class `{}`", m.name, class.name),
                        m.span,
                    ));
                }
                let id = declare(self, m, Some(cid))?;
                self.methods.insert((cid, m.name.clone()), id);
                self.program.classes[cid.index()].methods.push(id);
            }
        }
        Ok(())
    }

    fn resolve_type(&self, t: &AType, span: Span) -> Result<Ty, LangError> {
        Ok(match t {
            AType::Int => Ty::Int,
            AType::Float => Ty::Float,
            AType::Bool => Ty::Bool,
            AType::Array(elem) => {
                let e = self.resolve_type(elem, span)?;
                if !e.is_scalar() {
                    return Err(LangError::check(
                        "array elements must be scalars (int, float or bool)",
                        span,
                    ));
                }
                Ty::Array(Box::new(e))
            }
            AType::Named(name) => match self.classes.get(name) {
                Some(id) => Ty::Object(*id),
                None => return Err(LangError::check(format!("unknown type `{name}`"), span)),
            },
        })
    }

    fn lower_body(&mut self, afunc: &AFunc, id: FuncId) -> Result<(), LangError> {
        let mut ctx = BodyCtx {
            func: id,
            locals: HashMap::new(),
            loop_depth: 0,
            for_depth: None,
        };
        {
            let func = self.program.func(id);
            for (i, l) in func.locals.iter().enumerate().take(func.num_params) {
                ctx.locals.insert(l.name.clone(), LocalId::new(i));
            }
        }
        let stmts = self.lower_block(&mut ctx, &afunc.body)?;
        self.program.func_mut(id).body = hps_ir::Block::of(stmts);
        Ok(())
    }

    fn lower_block(&mut self, ctx: &mut BodyCtx, stmts: &[AStmt]) -> Result<Vec<Stmt>, LangError> {
        let mut out = Vec::new();
        for s in stmts {
            self.lower_stmt(ctx, s, &mut out)?;
        }
        Ok(out)
    }

    fn lower_stmt(
        &mut self,
        ctx: &mut BodyCtx,
        stmt: &AStmt,
        out: &mut Vec<Stmt>,
    ) -> Result<(), LangError> {
        // Anchor every lowered statement at the source statement's position
        // and carry its `@allow` suppressions onto the IR.
        let mk = |kind: StmtKind| -> Stmt {
            let mut s = Stmt::at(kind, stmt.span);
            s.allows.clone_from(&stmt.allows);
            s
        };
        match &stmt.kind {
            AStmtKind::VarDecl { name, ty, init } => {
                if ctx.locals.contains_key(name) {
                    return Err(LangError::check(
                        format!(
                            "duplicate variable `{name}` (MiniLang locals are function-scoped)"
                        ),
                        stmt.span,
                    ));
                }
                let t = self.resolve_type(ty, stmt.span)?;
                let lid = self
                    .program
                    .func_mut(ctx.func)
                    .add_local(name.clone(), t.clone());
                ctx.locals.insert(name.clone(), lid);
                if let Some(init) = init {
                    let (e, ety) = self.lower_expr(ctx, init)?;
                    self.check_assignable(&t, &ety, init.span)?;
                    out.push(mk(StmtKind::Assign {
                        place: Place::Local(lid),
                        value: e,
                    }));
                }
                Ok(())
            }
            AStmtKind::Assign { place, value } => {
                let (p, pty) = self.lower_place(ctx, place)?;
                let (v, vty) = self.lower_expr(ctx, value)?;
                self.check_assignable(&pty, &vty, value.span)?;
                out.push(mk(StmtKind::Assign { place: p, value: v }));
                Ok(())
            }
            AStmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let (c, cty) = self.lower_expr(ctx, cond)?;
                self.expect_ty(&cty, &Ty::Bool, "if condition", cond.span)?;
                let t = self.lower_block(ctx, then_blk)?;
                let e = self.lower_block(ctx, else_blk)?;
                out.push(mk(StmtKind::If {
                    cond: c,
                    then_blk: hps_ir::Block::of(t),
                    else_blk: hps_ir::Block::of(e),
                }));
                Ok(())
            }
            AStmtKind::While { cond, body } => {
                let (c, cty) = self.lower_expr(ctx, cond)?;
                self.expect_ty(&cty, &Ty::Bool, "while condition", cond.span)?;
                ctx.loop_depth += 1;
                let saved_for = ctx.for_depth;
                let b = self.lower_block(ctx, body)?;
                ctx.for_depth = saved_for;
                ctx.loop_depth -= 1;
                out.push(mk(StmtKind::While {
                    cond: c,
                    body: hps_ir::Block::of(b),
                }));
                Ok(())
            }
            AStmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.lower_stmt(ctx, init, out)?;
                }
                let c = match cond {
                    Some(cond) => {
                        let (c, cty) = self.lower_expr(ctx, cond)?;
                        self.expect_ty(&cty, &Ty::Bool, "for condition", cond.span)?;
                        c
                    }
                    None => Expr::bool(true),
                };
                ctx.loop_depth += 1;
                let saved_for = ctx.for_depth;
                ctx.for_depth = Some(ctx.loop_depth);
                let mut b = self.lower_block(ctx, body)?;
                ctx.for_depth = saved_for;
                ctx.loop_depth -= 1;
                if let Some(step) = step {
                    self.lower_stmt(ctx, step, &mut b)?;
                }
                out.push(mk(StmtKind::While {
                    cond: c,
                    body: hps_ir::Block::of(b),
                }));
                Ok(())
            }
            AStmtKind::Return(value) => {
                let ret_ty = self.program.func(ctx.func).ret_ty.clone();
                match (value, &ret_ty) {
                    (None, Ty::Void) => out.push(mk(StmtKind::Return(None))),
                    (None, other) => {
                        return Err(LangError::check(
                            format!("function returns `{other}` but `return;` has no value"),
                            stmt.span,
                        ))
                    }
                    (Some(_), Ty::Void) => {
                        return Err(LangError::check(
                            "void function cannot return a value",
                            stmt.span,
                        ))
                    }
                    (Some(v), expected) => {
                        let (e, ety) = self.lower_expr(ctx, v)?;
                        self.check_assignable(expected, &ety, v.span)?;
                        out.push(mk(StmtKind::Return(Some(e))));
                    }
                }
                Ok(())
            }
            AStmtKind::Break => {
                if ctx.loop_depth == 0 {
                    return Err(LangError::check("`break` outside of a loop", stmt.span));
                }
                out.push(mk(StmtKind::Break));
                Ok(())
            }
            AStmtKind::Continue => {
                if ctx.loop_depth == 0 {
                    return Err(LangError::check("`continue` outside of a loop", stmt.span));
                }
                if ctx.for_depth == Some(ctx.loop_depth) {
                    return Err(LangError::check(
                        "`continue` directly inside a `for` body is not supported \
                         (the desugaring would skip the step); use a `while` loop",
                        stmt.span,
                    ));
                }
                out.push(mk(StmtKind::Continue));
                Ok(())
            }
            AStmtKind::Print(e) => {
                let (v, vty) = self.lower_expr(ctx, e)?;
                if !vty.is_scalar() {
                    return Err(LangError::check(
                        format!("`print` takes a scalar, found `{vty}`"),
                        e.span,
                    ));
                }
                out.push(mk(StmtKind::Print(v)));
                Ok(())
            }
            AStmtKind::Expr(e) => {
                let (v, _) = self.lower_expr_allow_void(ctx, e)?;
                match v {
                    Expr::Call { .. } => {
                        out.push(mk(StmtKind::ExprStmt(v)));
                        Ok(())
                    }
                    _ => Err(LangError::check(
                        "only call expressions may be used as statements",
                        e.span,
                    )),
                }
            }
        }
    }

    fn lower_place(&mut self, ctx: &mut BodyCtx, e: &AExpr) -> Result<(Place, Ty), LangError> {
        match &e.kind {
            AExprKind::Ident(name) => {
                if let Some(&lid) = ctx.locals.get(name) {
                    let ty = self.program.func(ctx.func).local(lid).ty.clone();
                    Ok((Place::Local(lid), ty))
                } else if let Some(&gid) = self.globals.get(name) {
                    let ty = self.program.globals[gid.index()].ty.clone();
                    Ok((Place::Global(gid), ty))
                } else {
                    Err(LangError::check(
                        format!("unknown variable `{name}`"),
                        e.span,
                    ))
                }
            }
            AExprKind::Index { base, index } => {
                let (b, bty) = self.lower_place(ctx, base)?;
                let elem = match bty.element() {
                    Some(elem) => elem.clone(),
                    None => {
                        return Err(LangError::check(
                            format!("cannot index non-array type `{bty}`"),
                            base.span,
                        ))
                    }
                };
                let (i, ity) = self.lower_expr(ctx, index)?;
                self.expect_ty(&ity, &Ty::Int, "array index", index.span)?;
                Ok((
                    Place::Index {
                        base: Box::new(b),
                        index: i,
                    },
                    elem,
                ))
            }
            AExprKind::Field { obj, name } => {
                let (o, oty) = self.lower_expr(ctx, obj)?;
                let cid = match oty {
                    Ty::Object(cid) => cid,
                    other => {
                        return Err(LangError::check(
                            format!("cannot access field `{name}` on non-object type `{other}`"),
                            obj.span,
                        ))
                    }
                };
                let class = self.program.class(cid);
                let fid = class.field_by_name(name).ok_or_else(|| {
                    LangError::check(
                        format!("class `{}` has no field `{name}`", class.name),
                        e.span,
                    )
                })?;
                let fty = class.field(fid).ty.clone();
                Ok((
                    Place::Field {
                        obj: o,
                        class: cid,
                        field: fid,
                    },
                    fty,
                ))
            }
            AExprKind::SelfRef => Err(LangError::check("cannot assign to `self`", e.span)),
            _ => Err(LangError::check("invalid assignment target", e.span)),
        }
    }

    fn lower_expr(&mut self, ctx: &mut BodyCtx, e: &AExpr) -> Result<(Expr, Ty), LangError> {
        let (expr, ty) = self.lower_expr_allow_void(ctx, e)?;
        if ty == Ty::Void {
            return Err(LangError::check(
                "void call used where a value is required",
                e.span,
            ));
        }
        Ok((expr, ty))
    }

    fn lower_expr_allow_void(
        &mut self,
        ctx: &mut BodyCtx,
        e: &AExpr,
    ) -> Result<(Expr, Ty), LangError> {
        match &e.kind {
            AExprKind::Int(v) => Ok((Expr::int(*v), Ty::Int)),
            AExprKind::Float(v) => Ok((Expr::float(*v), Ty::Float)),
            AExprKind::Bool(v) => Ok((Expr::bool(*v), Ty::Bool)),
            AExprKind::SelfRef => {
                let func = self.program.func(ctx.func);
                match func.class {
                    Some(cid) => Ok((Expr::local(LocalId::new(0)), Ty::Object(cid))),
                    None => Err(LangError::check("`self` outside of a method", e.span)),
                }
            }
            AExprKind::Ident(name) => {
                if let Some(&lid) = ctx.locals.get(name) {
                    let ty = self.program.func(ctx.func).local(lid).ty.clone();
                    Ok((Expr::local(lid), ty))
                } else if let Some(&gid) = self.globals.get(name) {
                    let ty = self.program.globals[gid.index()].ty.clone();
                    Ok((Expr::global(gid), ty))
                } else {
                    Err(LangError::check(
                        format!("unknown variable `{name}`"),
                        e.span,
                    ))
                }
            }
            AExprKind::Index { base, index } => {
                let (b, bty) = self.lower_expr(ctx, base)?;
                let elem = match bty.element() {
                    Some(elem) => elem.clone(),
                    None => {
                        return Err(LangError::check(
                            format!("cannot index non-array type `{bty}`"),
                            base.span,
                        ))
                    }
                };
                let (i, ity) = self.lower_expr(ctx, index)?;
                self.expect_ty(&ity, &Ty::Int, "array index", index.span)?;
                Ok((Expr::index(b, i), elem))
            }
            AExprKind::Field { obj, name } => {
                let (o, oty) = self.lower_expr(ctx, obj)?;
                let cid = match oty {
                    Ty::Object(cid) => cid,
                    other => {
                        return Err(LangError::check(
                            format!("cannot access field `{name}` on non-object type `{other}`"),
                            obj.span,
                        ))
                    }
                };
                let class = self.program.class(cid);
                let fid = class.field_by_name(name).ok_or_else(|| {
                    LangError::check(
                        format!("class `{}` has no field `{name}`", class.name),
                        e.span,
                    )
                })?;
                let fty = class.field(fid).ty.clone();
                Ok((
                    Expr::FieldGet {
                        obj: Box::new(o),
                        class: cid,
                        field: fid,
                    },
                    fty,
                ))
            }
            AExprKind::Unary { op, arg } => {
                let (a, aty) = self.lower_expr(ctx, arg)?;
                match op {
                    UnOp::Neg if aty == Ty::Int || aty == Ty::Float => {
                        Ok((Expr::unary(UnOp::Neg, a), aty))
                    }
                    UnOp::Not if aty == Ty::Bool => Ok((Expr::unary(UnOp::Not, a), Ty::Bool)),
                    _ => Err(LangError::check(
                        format!("cannot apply `{}` to `{aty}`", op.symbol()),
                        e.span,
                    )),
                }
            }
            AExprKind::Binary { op, lhs, rhs } => {
                let (l, lty) = self.lower_expr(ctx, lhs)?;
                let (r, rty) = self.lower_expr(ctx, rhs)?;
                let result = self.binary_result(*op, &lty, &rty, e.span)?;
                Ok((Expr::binary(*op, l, r), result))
            }
            AExprKind::Call { callee, args } => self.lower_call(ctx, e, callee, args),
            AExprKind::NewArray { elem, len } => {
                let et = self.resolve_type(elem, e.span)?;
                if !et.is_scalar() {
                    return Err(LangError::check("array elements must be scalars", e.span));
                }
                let (l, lty) = self.lower_expr(ctx, len)?;
                self.expect_ty(&lty, &Ty::Int, "array length", len.span)?;
                Ok((
                    Expr::NewArray {
                        elem: et.clone(),
                        len: Box::new(l),
                    },
                    Ty::Array(Box::new(et)),
                ))
            }
            AExprKind::NewObject(name) => match self.classes.get(name) {
                Some(&cid) => Ok((Expr::NewObject(cid), Ty::Object(cid))),
                None => Err(LangError::check(format!("unknown class `{name}`"), e.span)),
            },
        }
    }

    fn lower_call(
        &mut self,
        ctx: &mut BodyCtx,
        whole: &AExpr,
        callee: &AExpr,
        args: &[AExpr],
    ) -> Result<(Expr, Ty), LangError> {
        match &callee.kind {
            AExprKind::Ident(name) => {
                if let Some(builtin) = Builtin::from_name(name) {
                    return self.lower_builtin(ctx, whole, builtin, args);
                }
                let fid = *self.free_funcs.get(name).ok_or_else(|| {
                    LangError::check(format!("unknown function `{name}`"), callee.span)
                })?;
                let mut lowered = Vec::new();
                let mut tys = Vec::new();
                for a in args {
                    let (e, t) = self.lower_expr(ctx, a)?;
                    lowered.push(e);
                    tys.push(t);
                }
                self.check_call_sig(fid, &tys, whole.span)?;
                let ret = self.sigs[fid.index()].ret.clone();
                Ok((
                    Expr::Call {
                        callee: Callee::Func(fid),
                        args: lowered,
                    },
                    ret,
                ))
            }
            AExprKind::Field { obj, name } => {
                let (recv, rty) = self.lower_expr(ctx, obj)?;
                let cid = match rty {
                    Ty::Object(cid) => cid,
                    other => {
                        return Err(LangError::check(
                            format!("cannot call method `{name}` on non-object type `{other}`"),
                            obj.span,
                        ))
                    }
                };
                let fid = *self.methods.get(&(cid, name.clone())).ok_or_else(|| {
                    LangError::check(
                        format!(
                            "class `{}` has no method `{name}`",
                            self.program.class(cid).name
                        ),
                        callee.span,
                    )
                })?;
                let mut lowered = vec![recv];
                let mut tys = vec![Ty::Object(cid)];
                for a in args {
                    let (e, t) = self.lower_expr(ctx, a)?;
                    lowered.push(e);
                    tys.push(t);
                }
                self.check_call_sig(fid, &tys, whole.span)?;
                let ret = self.sigs[fid.index()].ret.clone();
                Ok((
                    Expr::Call {
                        callee: Callee::Method(cid, fid),
                        args: lowered,
                    },
                    ret,
                ))
            }
            _ => Err(LangError::check(
                "call target must be a function or method name",
                callee.span,
            )),
        }
    }

    fn lower_builtin(
        &mut self,
        ctx: &mut BodyCtx,
        whole: &AExpr,
        builtin: Builtin,
        args: &[AExpr],
    ) -> Result<(Expr, Ty), LangError> {
        if args.len() != builtin.arity() {
            return Err(LangError::check(
                format!(
                    "builtin `{}` takes {} argument(s), found {}",
                    builtin.name(),
                    builtin.arity(),
                    args.len()
                ),
                whole.span,
            ));
        }
        let mut lowered = Vec::new();
        let mut tys = Vec::new();
        for a in args {
            let (e, t) = self.lower_expr(ctx, a)?;
            lowered.push(e);
            tys.push(t);
        }
        let bad = |msg: &str| -> LangError {
            LangError::check(format!("builtin `{}`: {msg}", builtin.name()), whole.span)
        };
        let ret = match builtin {
            Builtin::Len => match &tys[0] {
                Ty::Array(_) => Ty::Int,
                _ => return Err(bad("argument must be an array")),
            },
            Builtin::Exp | Builtin::Log | Builtin::Sqrt | Builtin::Floor => match &tys[0] {
                Ty::Float => Ty::Float,
                _ => return Err(bad("argument must be a float")),
            },
            Builtin::Abs => match &tys[0] {
                Ty::Int => Ty::Int,
                Ty::Float => Ty::Float,
                _ => return Err(bad("argument must be int or float")),
            },
            Builtin::Min | Builtin::Max => match (&tys[0], &tys[1]) {
                (Ty::Int, Ty::Int) => Ty::Int,
                (Ty::Float, Ty::Float) => Ty::Float,
                _ => return Err(bad("arguments must both be int or both be float")),
            },
            Builtin::IntCast => match &tys[0] {
                Ty::Int | Ty::Float | Ty::Bool => Ty::Int,
                _ => return Err(bad("argument must be scalar")),
            },
            Builtin::FloatCast => match &tys[0] {
                Ty::Int | Ty::Float => Ty::Float,
                _ => return Err(bad("argument must be int or float")),
            },
        };
        Ok((Expr::builtin(builtin, lowered), ret))
    }

    fn check_call_sig(&self, fid: FuncId, args: &[Ty], span: Span) -> Result<(), LangError> {
        let sig = &self.sigs[fid.index()];
        let name = &self.program.func(fid).name;
        if sig.params.len() != args.len() {
            return Err(LangError::check(
                format!(
                    "`{name}` takes {} argument(s), found {}",
                    sig.params.len() - usize::from(self.program.func(fid).class.is_some()),
                    args.len() - usize::from(self.program.func(fid).class.is_some())
                ),
                span,
            ));
        }
        for (i, (expected, found)) in sig.params.iter().zip(args).enumerate() {
            if !expected.assignable_from(found) {
                return Err(LangError::check(
                    format!(
                        "`{name}` argument {} expects `{expected}`, found `{found}`",
                        i + 1
                    ),
                    span,
                ));
            }
        }
        Ok(())
    }

    fn binary_result(&self, op: BinOp, l: &Ty, r: &Ty, span: Span) -> Result<Ty, LangError> {
        let err = || {
            LangError::check(
                format!("cannot apply `{}` to `{l}` and `{r}`", op.symbol()),
                span,
            )
        };
        if op.is_arithmetic() {
            return match (l, r) {
                (Ty::Int, Ty::Int) => Ok(Ty::Int),
                (Ty::Float, Ty::Float) if op != BinOp::Rem => Ok(Ty::Float),
                _ => Err(err()),
            };
        }
        if op.is_relational() {
            return match (l, r) {
                (Ty::Int, Ty::Int) | (Ty::Float, Ty::Float) => Ok(Ty::Bool),
                (Ty::Bool, Ty::Bool) if matches!(op, BinOp::Eq | BinOp::Ne) => Ok(Ty::Bool),
                _ => Err(err()),
            };
        }
        // logical
        match (l, r) {
            (Ty::Bool, Ty::Bool) => Ok(Ty::Bool),
            _ => Err(err()),
        }
    }

    fn check_assignable(&self, to: &Ty, from: &Ty, span: Span) -> Result<(), LangError> {
        if to.assignable_from(from) {
            Ok(())
        } else {
            Err(LangError::check(
                format!("type mismatch: expected `{to}`, found `{from}`"),
                span,
            ))
        }
    }

    fn expect_ty(&self, found: &Ty, want: &Ty, what: &str, span: Span) -> Result<(), LangError> {
        if found == want {
            Ok(())
        } else {
            Err(LangError::check(
                format!("{what} must be `{want}`, found `{found}`"),
                span,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;
    use hps_ir::{StmtKind, Ty};

    fn check_err(src: &str, needle: &str) {
        let err = parse(src).expect_err("should fail to lower");
        assert!(
            err.to_string().contains(needle),
            "expected error containing `{needle}`, got: {err}"
        );
    }

    #[test]
    fn lowers_locals_and_params() {
        let p = parse("fn f(x: int) -> int { var y: int = x + 1; return y; }").unwrap();
        let f = &p.functions[0];
        assert_eq!(f.num_params, 1);
        assert_eq!(f.locals.len(), 2);
        assert_eq!(f.stmt_count(), 2);
    }

    #[test]
    fn spans_round_trip_onto_ir_statements() {
        let src = "fn f(x: int) -> int {\n    var y: int = x + 1;\n    if (y > 2) {\n        y = y * 2;\n    }\n    return y;\n}";
        let p = parse(src).unwrap();
        let f = &p.functions[0];
        // Every lowered statement carries the position of the source
        // statement's first token.
        assert_eq!(f.body.stmts[0].span, hps_ir::Span::new(2, 5)); // var y
        assert_eq!(f.body.stmts[1].span, hps_ir::Span::new(3, 5)); // if
        match &f.body.stmts[1].kind {
            StmtKind::If { then_blk, .. } => {
                assert_eq!(then_blk.stmts[0].span, hps_ir::Span::new(4, 9)); // y = y * 2
            }
            other => panic!("expected if, got {}", other.tag()),
        }
        assert_eq!(f.body.stmts[2].span, hps_ir::Span::new(6, 5)); // return
        let mut all_known = true;
        hps_ir::visit::for_each_stmt(&f.body, &mut |s| all_known &= s.span.is_known());
        assert!(all_known, "every lowered statement should carry a span");
    }

    #[test]
    fn allows_survive_lowering() {
        let p = parse(
            "@allow(weak_ilp_linear)\nfn f(x: int) -> int {\n    @allow(unused_leak)\n    var y: int = x;\n    return y;\n}",
        )
        .unwrap();
        let f = &p.functions[0];
        assert!(f.allows_lint("weak_ilp_linear"));
        assert!(!f.allows_lint("unused_leak"));
        assert!(f.body.stmts[0].allows_lint("unused_leak"));
        assert!(f.body.stmts[1].allows.is_empty());
    }

    #[test]
    fn for_desugars_to_while() {
        let p =
            parse("fn f() { var i: int; for (i = 0; i < 3; i = i + 1) { print(i); } }").unwrap();
        let f = &p.functions[0];
        // i = 0; while ...
        assert_eq!(f.body.stmts.len(), 2);
        match &f.body.stmts[1].kind {
            StmtKind::While { body, .. } => {
                // print; step
                assert_eq!(body.len(), 2);
            }
            other => panic!("expected while, got {}", other.tag()),
        }
    }

    #[test]
    fn methods_get_self_param() {
        let p =
            parse("class C { x: int; fn get() -> int { return self.x; } } fn main() { }").unwrap();
        let c = p.class_by_name("C").unwrap();
        let m = p.method_by_name(c, "get").unwrap();
        let f = p.func(m);
        assert_eq!(f.num_params, 1);
        assert_eq!(f.local(hps_ir::LocalId::new(0)).name, "self");
        assert_eq!(f.local(hps_ir::LocalId::new(0)).ty, Ty::Object(c));
    }

    #[test]
    fn method_calls_resolve() {
        let p = parse(
            "class C { x: int; fn get() -> int { return self.x; } }
             fn main() { var c: C = new C(); c.x = 4; print(c.get()); }",
        )
        .unwrap();
        assert_eq!(p.functions.len(), 2);
    }

    #[test]
    fn global_arrays_and_scalars() {
        let p =
            parse("global n: int = 3; global buf: float[] = new float[8]; fn main() { }").unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[1].array_len, Some(8));
    }

    #[test]
    fn negative_global_initializer() {
        let p = parse("global n: int = -3; fn main() { }").unwrap();
        assert_eq!(p.globals[0].init, Some(hps_ir::Value::Int(-3)));
    }

    #[test]
    fn rejects_type_mismatches() {
        check_err("fn f() { var x: int = 1.5; }", "type mismatch");
        check_err("fn f() { var x: float = 1; }", "type mismatch");
        check_err("fn f(x: int) { if (x) { } }", "must be `bool`");
        check_err("fn f() { var b: bool = 1 < 2.0; }", "cannot apply `<`");
        check_err("fn f() { var x: float = 1.0 % 2.0; }", "cannot apply `%`");
    }

    #[test]
    fn rejects_unknown_names() {
        check_err("fn f() { x = 1; }", "unknown variable");
        check_err("fn f() { g(); }", "unknown function");
        check_err("fn f() { var p: Nope = new Nope(); }", "unknown type");
    }

    #[test]
    fn rejects_duplicates() {
        check_err("fn f() { } fn f() { }", "duplicate function");
        check_err("global g: int; global g: int;", "duplicate global");
        check_err("class C { x: int; x: int; }", "duplicate field");
        check_err("fn f() { var x: int; var x: int; }", "duplicate variable");
    }

    #[test]
    fn rejects_control_flow_misuse() {
        check_err("fn f() { break; }", "outside of a loop");
        check_err("fn f() { continue; }", "outside of a loop");
        check_err(
            "fn f() { var i: int; for (i = 0; i < 3; i = i + 1) { continue; } }",
            "directly inside a `for`",
        );
    }

    #[test]
    fn continue_ok_in_while_nested_in_for() {
        let src = "fn f() { var i: int; var j: int;
            for (i = 0; i < 3; i = i + 1) {
                j = 0;
                while (j < 2) { j = j + 1; continue; }
            } }";
        parse(src).expect("nested continue is fine");
    }

    #[test]
    fn rejects_void_in_value_position() {
        check_err("fn v() { } fn f() { var x: int = v(); }", "void call");
    }

    #[test]
    fn rejects_builtin_redefinition() {
        check_err("fn len(x: int) -> int { return x; }", "builtin");
    }

    #[test]
    fn rejects_self_outside_method() {
        check_err("fn f() -> int { return self.x; }", "`self` outside");
    }

    #[test]
    fn rejects_return_mismatches() {
        check_err("fn f() -> int { return; }", "no value");
        check_err("fn f() { return 1; }", "void function");
        check_err("fn f() -> int { return 1.5; }", "type mismatch");
    }

    #[test]
    fn builtins_type_check() {
        parse("fn f(a: float) -> float { return exp(a) + log(a) + sqrt(a); }").unwrap();
        parse("fn f(a: int[]) -> int { return len(a); }").unwrap();
        parse("fn f(a: int) -> float { return float(a); }").unwrap();
        parse("fn f(a: float) -> int { return int(a); }").unwrap();
        check_err(
            "fn f(a: int) -> float { return exp(a); }",
            "must be a float",
        );
        check_err("fn f(a: int) -> int { return len(a); }", "must be an array");
        check_err("fn f(a: int) -> int { return min(a); }", "takes 2 argument");
    }

    #[test]
    fn rejects_array_of_arrays() {
        check_err("fn f(a: int[][]) { }", "must be scalars");
    }

    #[test]
    fn rejects_object_globals() {
        check_err("class C { x: int; } global c: C;", "class type");
    }
}
