//! Front-end robustness: the lexer/parser/type checker must return errors,
//! never panic, on arbitrary input — including near-miss mutations of
//! valid programs.

use proptest::prelude::*;

proptest! {
    #[test]
    fn arbitrary_strings_never_panic(src in ".{0,200}") {
        let _ = hps_lang::parse(&src);
    }

    #[test]
    fn arbitrary_token_soup_never_panics(tokens in prop::collection::vec(
        prop_oneof![
            Just("fn".to_string()), Just("var".to_string()), Just("while".to_string()),
            Just("if".to_string()), Just("else".to_string()), Just("return".to_string()),
            Just("{".to_string()), Just("}".to_string()), Just("(".to_string()),
            Just(")".to_string()), Just(";".to_string()), Just("=".to_string()),
            Just("+".to_string()), Just("int".to_string()), Just("x".to_string()),
            Just("1".to_string()), Just("1.5".to_string()), Just("[".to_string()),
            Just("]".to_string()), Just("->".to_string()), Just(",".to_string()),
            Just(":".to_string()), Just("self".to_string()), Just("class".to_string()),
        ],
        0..60,
    )) {
        let src = tokens.join(" ");
        let _ = hps_lang::parse(&src);
    }

    #[test]
    fn single_char_deletion_of_valid_program_never_panics(idx in 0usize..200) {
        let src = "global g: int = 1;\n\
                   class C { x: int; fn get() -> int { return self.x; } }\n\
                   fn f(a: int, b: float[]) -> int {\n\
                       var s: int = 0;\n\
                       var i: int;\n\
                       for (i = 0; i < a; i = i + 1) { s = s + i; }\n\
                       if (s > 10 && a != 0) { return s % a; }\n\
                       return int(b[0]) + g;\n\
                   }\n\
                   fn main() { print(f(3, new float[2])); }";
        if idx < src.len() && src.is_char_boundary(idx) {
            let mut mutated = String::with_capacity(src.len());
            mutated.push_str(&src[..idx]);
            mutated.push_str(&src[idx + 1..]);
            let _ = hps_lang::parse(&mutated);
        }
    }
}
