//! Offline drop-in subset of the `proptest` crate API.
//!
//! The build container has no crates.io access, so this crate re-implements
//! the exact slice of proptest the workspace's property tests use:
//! `proptest!` / `prop_oneof!` / `prop_assert*`, `Strategy` with
//! `prop_map` / `boxed` / `prop_recursive`, integer-range and `any::<T>()`
//! strategies, `Just`, tuple strategies, `prop::collection::{vec,
//! btree_map}` and `.{a,b}` string strategies.
//!
//! Differences from upstream, deliberately accepted:
//! * generation is deterministic (fixed seed per test body) so CI runs are
//!   reproducible;
//! * there is no shrinking — a failing case is printed verbatim
//!   (`max_shrink_iters` is accepted and ignored);
//! * `prop_assert!`/`prop_assert_eq!` panic instead of returning
//!   `TestCaseError`, which is equivalent under "no shrinking".

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree: a strategy is just a
    /// deterministic function of the test RNG.
    pub trait Strategy {
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            U: 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            let base = self;
            BoxedStrategy(Rc::new(move |rng| f(base.generate(rng))))
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let base = self;
            BoxedStrategy(Rc::new(move |rng| base.generate(rng)))
        }

        /// Builds a recursive strategy: `self` generates the leaves and
        /// `recurse` wraps an inner strategy into the next nesting level.
        ///
        /// The upstream size-targeting parameters are accepted but only
        /// `depth` is honoured: each level picks a leaf with probability
        /// 1/3, so expressions of every depth up to `depth` occur.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(cur).boxed();
                cur = Union::new(vec![(1, leaf.clone()), (2, branch)]).boxed();
            }
            cur
        }
    }

    /// Type-erased, cheaply clonable strategy (proptest's `BoxedStrategy`).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between boxed strategies — the engine behind
    /// `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total;
            for (w, arm) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return arm.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick within total")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + r as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let r = u128::from(rng.next_u64()) % span;
                    (lo as i128 + r as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// String strategy from a regex-like pattern. Only the shapes the test
    /// suite uses are supported: `.{lo,hi}` (any chars except newline) and
    /// plain literal strings (no metacharacters).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            if let Some((lo, hi)) = parse_dot_repeat(self) {
                let len = lo + (rng.next_u64() as usize) % (hi - lo + 1);
                let mut out = String::with_capacity(len);
                for _ in 0..len {
                    out.push(random_char(rng));
                }
                return out;
            }
            assert!(
                !self.contains(['.', '*', '+', '[', '(', '{', '\\', '?', '|']),
                "proptest shim: unsupported regex strategy {self:?} \
                 (only `.{{lo,hi}}` and literals are implemented)"
            );
            (*self).to_string()
        }
    }

    /// Parses `.{lo,hi}` into its bounds.
    fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
        let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    /// A `.`-class character: mostly printable ASCII, with a tail of
    /// tabs/quotes/unicode to keep fuzz inputs nasty. Never `\n`.
    fn random_char(rng: &mut TestRng) -> char {
        let r = rng.next_u64();
        match r % 10 {
            0..=6 => char::from(0x20 + (r >> 8) as u8 % 0x5f),
            7 => ['\t', '"', '\'', '\\', '\r', '\0'][(r >> 8) as usize % 6],
            8 => char::from_u32(0x80 + (r >> 8) as u32 % 0x700).unwrap_or('¿'),
            _ => char::from_u32(0x1000 + (r >> 8) as u32 % 0xe000).unwrap_or('€'),
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn any_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for AnyStrategy<T> {}

    impl<T: Arbitrary + 'static> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::any_value(rng)
        }
    }

    /// `any::<T>()` — the full value range of `T`, with extremes
    /// over-represented the way upstream's binary search tends to surface
    /// them.
    pub fn any<T: Arbitrary + 'static>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl Arbitrary for bool {
        fn any_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn any_value(rng: &mut TestRng) -> $t {
                    let r = rng.next_u64();
                    // 1-in-8 edge injection keeps boundary bugs reachable
                    // despite the small fixed case count.
                    match r % 8 {
                        0 => match (r >> 3) % 5 {
                            0 => 0,
                            1 => 1,
                            2 => <$t>::MAX,
                            3 => <$t>::MIN,
                            _ => <$t>::MAX.wrapping_sub(1),
                        },
                        1 => (rng.next_u64() % 256) as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn any_value(rng: &mut TestRng) -> f64 {
            let r = rng.next_u64();
            match r % 8 {
                0 => [
                    0.0,
                    -0.0,
                    1.0,
                    -1.0,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    f64::NAN,
                    f64::MIN,
                ][(r >> 3) as usize % 8],
                1 | 2 => (rng.next_u64() as i64 % 10_000) as f64 / 16.0,
                _ => f64::from_bits(rng.next_u64()),
            }
        }
    }

    impl Arbitrary for f32 {
        fn any_value(rng: &mut TestRng) -> f32 {
            f64::any_value(rng) as f32
        }
    }

    impl Arbitrary for char {
        fn any_value(rng: &mut TestRng) -> char {
            char::from_u32(rng.next_u64() as u32 % 0xd800).unwrap_or('a')
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Element-count range for collection strategies (`lo..hi`, exclusive).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            assert!(self.lo < self.hi, "empty collection size range");
            self.lo + (rng.next_u64() as usize) % (self.hi - self.lo)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::btree_map(keys, values, size)`. Duplicate keys
    /// collapse, so the map may be smaller than the drawn size — same as
    /// upstream.
    pub fn btree_map<K, V>(
        keys: K,
        values: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }

    #[derive(Clone, Debug)]
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len)
                .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                .collect()
        }
    }
}

pub mod test_runner {
    use crate::strategy::Strategy;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Runner configuration. `max_shrink_iters` and `verbose` are accepted
    /// for source compatibility; this shim does not shrink or log.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
        pub verbose: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                verbose: 0,
            }
        }
    }

    /// Deterministic SplitMix64 stream driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            // Fixed seed: every CI run replays the same corpus.
            TestRunner {
                config,
                rng: TestRng::from_seed(0x4850_5321_7465_7374),
            }
        }

        /// Runs `test` against `config.cases` generated inputs. On panic the
        /// offending input is printed (pre-rendered, since the value was
        /// moved into the test) and the panic is re-raised.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
        where
            S: Strategy,
            S::Value: std::fmt::Debug,
            F: FnMut(S::Value),
        {
            for case in 0..self.config.cases {
                let input = strategy.generate(&mut self.rng);
                let rendered = format!("{input:#?}");
                if let Err(panic) = catch_unwind(AssertUnwindSafe(|| test(input))) {
                    eprintln!(
                        "proptest shim: case {case}/{} failed for input:\n{rendered}",
                        self.config.cases
                    );
                    resume_unwind(panic);
                }
            }
        }
    }
}

pub mod prelude {
    /// Upstream's prelude exposes the crate root as `prop` so tests can say
    /// `prop::collection::vec(...)`.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller and passed
/// through) that runs `body` for every generated tuple of arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __runner = $crate::test_runner::TestRunner::new(__config);
            let __strategy = ( $($strat,)+ );
            __runner.run(&__strategy, |($($arg,)+)| $body);
        }
    )*};
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// No shrinking in the shim, so failing a case by panicking is equivalent
/// to upstream's `Err(TestCaseError)` path.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in -7i64..9, y in 1u8..5, z in 0usize..3) {
            prop_assert!((-7..9).contains(&x));
            prop_assert!((1..5).contains(&y));
            prop_assert!(z < 3);
        }

        #[test]
        fn oneof_unions_and_maps(v in prop_oneof![
            2 => (0i64..10).prop_map(|n| n * 2),
            1 => Just(-1i64),
        ]) {
            prop_assert!(v == -1 || (v % 2 == 0 && (0..20).contains(&v)));
        }

        #[test]
        fn collections_respect_sizes(
            xs in prop::collection::vec(any::<u8>(), 2..6),
            m in prop::collection::btree_map(0usize..4, any::<bool>(), 0..8),
        ) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(m.len() <= 4); // only 4 possible keys
        }

        #[test]
        fn recursive_strategies_bound_depth(t in (0i64..5).prop_map(Tree::Leaf).boxed()
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            }))
        {
            prop_assert!(depth(&t) <= 3);
        }

        #[test]
        fn string_regex_subset(s in ".{0,12}") {
            prop_assert!(s.chars().count() <= 12);
            prop_assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(any::<i64>(), 0..9);
        let mut a = TestRng::from_seed(5);
        let mut b = TestRng::from_seed(5);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
