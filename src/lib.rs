//! # hiding-program-slices
//!
//! Facade crate for the reproduction of *Hiding Program Slices for Software
//! Security* (Zhang & Gupta, CGO 2003): slicing-based splitting of software
//! into an **open** component (runs on the unsecure machine) and a
//! **hidden** component (runs on a secure device), plus the paper's security
//! analysis and an executable attack model.
//!
//! This crate re-exports the workspace crates under stable module names; see
//! each module's documentation for the full API:
//!
//! * [`ir`] — the structured mid-level IR.
//! * [`lang`] — the MiniLang front end (lexer, parser, type checker).
//! * [`analysis`] — CFG, dominators, control/data dependence, loops, call
//!   graph.
//! * [`slicing`] — forward data slices and control-ancestor promotion.
//! * [`split`] — the splitting transformation (the paper's contribution).
//! * [`runtime`] — interpreter, secure-server executor and channels.
//! * [`telemetry`] — counters, deterministic histograms and the
//!   `hps-telemetry/v1` snapshot document recorded by the runtime's
//!   optional telemetry hooks.
//! * [`security`] — ILP identification and complexity analysis.
//! * [`audit`] — split-soundness auditor: taint analysis, weak-ILP lints,
//!   structured diagnostics (terminal / JSON / SARIF) and the
//!   [`audit::Planner`] — the budget-aware split planner with
//!   auto-hardening.
//! * [`attack`] — the adversary's recovery toolbox.
//! * [`suite`] — the five benchmark programs and workload generators.
//!
//! # Examples
//!
//! Plan a split with the [`audit::Planner`] — seed selection, hardening
//! and the security/audit reports in one call — then execute both
//! versions through the [`runtime::Executor`] builder, recording
//! telemetry along the way:
//!
//! ```
//! use hiding_program_slices as hps;
//!
//! let source = r#"
//!     fn f(x: int, y: int, z: int) -> int {
//!         var a: int; var i: int; var sum: int;
//!         a = 3 * x + y;
//!         i = a;
//!         sum = 0;
//!         while (i < z) { sum = sum + i; i = i + 1; }
//!         return sum;
//!     }
//!     fn main() { print(f(1, 2, 30)); }
//! "#;
//! let program = hps::lang::parse(source)?;
//! let report = hps::audit::Planner::new(&program).harden(true).plan()?;
//! assert!(!report.plan.targets.is_empty());
//! // Hardening masks weak leaks on the wire; no weak leak ships unmasked.
//! assert_eq!(report.weak_unmasked_after(), 0);
//! let original = hps::runtime::run_program(&program, &[])?;
//! let run = hps::runtime::Executor::new(&report.split.open, &report.split.hidden)
//!     .recorder(hps::runtime::MetricsRecorder::new())
//!     .run(&[])?;
//! assert_eq!(original.output, run.outcome.output);
//! assert_eq!(
//!     run.telemetry.counter("hps_interactions_total"),
//!     run.interactions,
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Pinning a specific seed by name still works through
//! [`split::SplitPlan::single`] and [`split::split_program`]; the
//! `Planner` is the front door for whole-program planning.

pub use hps_analysis as analysis;
pub use hps_attack as attack;
pub use hps_audit as audit;
pub use hps_core as split;
pub use hps_ir as ir;
pub use hps_lang as lang;
pub use hps_runtime as runtime;
pub use hps_security as security;
pub use hps_slicing as slicing;
pub use hps_suite as suite;
pub use hps_telemetry as telemetry;
