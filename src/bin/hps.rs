//! `hps` — command-line front end for slice-based software splitting.
//!
//! ```text
//! hps run <file.ml> [--split] [--batch] [--no-vm] [--no-memo] [--metrics-json] [selection] [ints...]
//!                                             run a MiniLang program; --split runs
//!                                             the open/hidden pair, --metrics-json
//!                                             emits the hps-telemetry/v1 snapshot
//! hps split <file.ml> [--func f --var a | --auto | --global g | --class C]
//!           [--budget PCT[%]] [--harden] [--json] [--args ints...]
//!                                             print Of, Hf and the split report;
//!                                             with --budget/--harden/--json/--args,
//!                                             run the budget-aware planner instead
//!                                             and print its plan report
//! hps analyze <file.ml> [selection flags]     ILP complexity report (§3)
//! hps audit <file.ml> [selection] [--json|--sarif|--effects]
//!                                             split-soundness audit (non-zero exit on deny);
//!                                             --effects prints the fragment purity report
//! hps serve <file.ml> <addr> [selection] [--shards N] [--no-vm] [--no-memo] [--chaos SEED]
//!                            [--metrics ADDR] [--journal-dir DIR]
//!                                             host the hidden component on TCP;
//!                                             --shards spreads sessions over N
//!                                             executor threads, --metrics serves
//!                                             Prometheus text format, --journal-dir
//!                                             persists session journals so hidden
//!                                             state survives a server restart
//! hps client <file.ml> <addr> [selection] [--batch] [--retry] [--timeout MS] [ints...]
//!                                             run the open component against a server
//! hps tables [--quick]                        shortcut to the experiment harness
//! ```
//!
//! `serve` and `client` must be given the same program and selection flags:
//! both sides derive the split deterministically and the client keeps only
//! the open half in memory.

use hiding_program_slices as hps;
use hps::runtime::tcp::{ChaosConfig, RetryPolicy, SessionServer, SessionServerHandle, TcpChannel};
use hps::runtime::{ExecConfig, Executor, Interp, MetricsRecorder, RtValue, SplitMeta};
use hps::split::{split_program, SplitPlan, SplitResult};
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("hps: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "run" => cmd_run(&args[1..]),
        "split" => cmd_split(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "audit" => cmd_audit(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "client" => cmd_client(&args[1..]),
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; try `hps help`")),
    }
}

const HELP: &str = "\
hps — slicing-based software splitting (CGO 2003 reproduction)

USAGE:
  hps run <file.ml> [--split] [--batch] [--no-vm] [--no-memo] [--metrics-json] [selection flags] [ints...]
  hps split <file.ml> [--func NAME --var NAME | --auto | --global NAME | --class NAME]
            [--budget PCT[%]] [--harden] [--json] [--args ints...]
  hps analyze <file.ml> [selection flags]
  hps audit <file.ml> [selection flags] [--json | --sarif | --effects]
  hps serve <file.ml> <addr> [selection flags] [--shards N] [--no-vm] [--no-memo] [--chaos SEED]
                             [--metrics ADDR] [--journal-dir DIR]
  hps client <file.ml> <addr> [selection flags] [--batch] [--retry] [--timeout MS] [--args ints...]

Selection flags default to --auto: call-graph-cut function selection with
complexity-guided, cost-restricted seed choice (the paper's pipeline).
`audit` re-derives the split, proves every hidden-value flow into the open
component passes a declared ILP, lints for weak leaks and exits non-zero
on any deny-level finding; --json / --sarif select machine-readable output.
--batch coalesces deferrable hidden calls into batched round trips.
--retry opens a fault-tolerant session (timeouts, reconnect with backoff,
exactly-once replay); --timeout MS (implies --retry) puts a hard per-call
deadline on every hidden round trip; --chaos SEED makes the server
deterministically kill connections mid-call to exercise it.
`serve --journal-dir DIR` journals every committed hidden call to
checksummed per-session files so sessions rebuild their hidden state
after a shard crash or a full server restart (`hps_server_*` recovery
counters record the replays).
`split --budget PCT --harden` runs the budget-aware planner: automatic
seed search under the overhead budget, decoy-based wire-masking of weak
(Constant/Linear) leaks, measured-vs-predicted cost report; --json emits
the deterministic hps-plan/v2 document, --args supplies the integer entry
arguments used for measurement (any of these flags selects planner mode).
`run --split` executes the open/hidden pair in-process; `--metrics-json`
(implies --split) prints the deterministic hps-telemetry/v1 snapshot to
stdout, with program output diverted to stderr. `serve --shards N` spreads
sessions over N executor threads (session_id % N) for multi-core
throughput; `serve --metrics ADDR` exposes the live server counters and
the shard queue-depth histogram in Prometheus text format over HTTP.
Hidden fragments execute on a compile-once bytecode VM by default;
--no-vm (or HPS_FRAGMENT_VM=0) falls back to the tree-walk interpreter.
Provably-pure fragments are memoized by argument bytes with identical
metering; --no-memo (or HPS_FRAGMENT_MEMO=0) disables the memo table.
`audit --effects` prints the per-fragment effect/purity report
(hps-audit-effects/v1 JSON) the memoizer is driven by.
";

fn load(path: &str) -> Result<hps::ir::Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    hps::lang::parse(&src).map_err(|e| format!("{path}: {e}"))
}

fn int_args(args: &[String]) -> Result<Vec<RtValue>, String> {
    args.iter()
        .map(|a| {
            a.parse::<i64>()
                .map(RtValue::Int)
                .map_err(|_| format!("entry arguments must be integers, got `{a}`"))
        })
        .collect()
}

fn parse_selection(program: &hps::ir::Program, args: &[String]) -> Result<SplitPlan, String> {
    let mut func = None;
    let mut var = None;
    let mut global = None;
    let mut class = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--func" => {
                func = Some(args.get(i + 1).ok_or("--func needs a name")?.clone());
                i += 2;
            }
            "--var" => {
                var = Some(args.get(i + 1).ok_or("--var needs a name")?.clone());
                i += 2;
            }
            "--global" => {
                global = Some(args.get(i + 1).ok_or("--global needs a name")?.clone());
                i += 2;
            }
            "--class" => {
                class = Some(args.get(i + 1).ok_or("--class needs a name")?.clone());
                i += 2;
            }
            "--auto" => i += 1,
            other => return Err(format!("unknown selection flag `{other}`")),
        }
    }
    if let Some(g) = global {
        return SplitPlan::global(program, &g).map_err(|e| e.to_string());
    }
    if let Some(c) = class {
        return SplitPlan::class(program, &c).map_err(|e| e.to_string());
    }
    match (func, var) {
        (Some(f), Some(v)) => SplitPlan::single(program, &f, &v).map_err(|e| e.to_string()),
        (Some(_), None) | (None, Some(_)) => Err("--func and --var must be given together".into()),
        (None, None) => {
            let mut plan =
                hps::security::default_targets(program, hps::security::SeedRule::CostRestricted);
            if plan.targets.is_empty() {
                // No cost-free split exists; fall back to the unrestricted
                // §4 rule and tell the user the traffic implications.
                plan =
                    hps::security::default_targets(program, hps::security::SeedRule::MaxComplexity);
                if !plan.targets.is_empty() {
                    eprintln!(
                        "[hps] note: no split avoids per-iteration traffic; \
falling back to the max-complexity seed rule"
                    );
                }
            }
            if plan.targets.is_empty() {
                return Err("automatic selection found nothing to split".into());
            }
            Ok(plan)
        }
    }
}

fn do_split(program: &hps::ir::Program, flags: &[String]) -> Result<SplitResult, String> {
    let plan = parse_selection(program, flags)?;
    split_program(program, &plan).map_err(|e| e.to_string())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    const USAGE: &str =
        "usage: hps run <file.ml> [--split] [--batch] [--no-vm] [--no-memo] [--metrics-json] [selection flags] [ints...]";
    let path = args.first().ok_or(USAGE)?;
    let rest = &args[1..];
    let mut split_mode = false;
    let mut batch = false;
    let mut metrics_json = false;
    let mut no_vm = false;
    let mut no_memo = false;
    let mut selection = Vec::new();
    let mut ints = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--split" => {
                split_mode = true;
                i += 1;
            }
            "--batch" => {
                batch = true;
                i += 1;
            }
            "--metrics-json" => {
                metrics_json = true;
                split_mode = true;
                i += 1;
            }
            "--no-vm" => {
                no_vm = true;
                i += 1;
            }
            "--no-memo" => {
                no_memo = true;
                i += 1;
            }
            flag @ ("--func" | "--var" | "--global" | "--class") => {
                selection.push(rest[i].clone());
                selection.push(
                    rest.get(i + 1)
                        .ok_or_else(|| format!("{flag} needs a name"))?
                        .clone(),
                );
                i += 2;
            }
            "--auto" => {
                selection.push(rest[i].clone());
                i += 1;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`; {USAGE}"));
            }
            _ => {
                ints.push(rest[i].clone());
                i += 1;
            }
        }
    }
    let program = load(path)?;
    let entry_args = int_args(&ints)?;
    if !split_mode {
        if !selection.is_empty() || batch || no_vm || no_memo {
            return Err("selection flags, --batch, --no-vm and --no-memo require --split".into());
        }
        let out = hps::runtime::run_program(&program, &entry_args).map_err(|e| e.to_string())?;
        for line in &out.output {
            println!("{line}");
        }
        eprintln!(
            "[hps] {} steps, {:.4} virtual seconds",
            out.steps,
            ExecConfig::new().cost_model.to_seconds(out.cost)
        );
        return Ok(());
    }
    let split = do_split(&program, &selection)?;
    let mut executor = Executor::new(&split.open, &split.hidden)
        .batching(batch)
        .recorder(MetricsRecorder::new());
    if no_vm {
        executor = executor.fragment_vm(false);
    }
    if no_memo {
        executor = executor.fragment_memo(false);
    }
    let report = executor.run(&entry_args).map_err(|e| e.to_string())?;
    if metrics_json {
        // The snapshot is the machine-readable product: keep stdout clean
        // for it and divert the program's own output to stderr.
        for line in &report.outcome.output {
            eprintln!("{line}");
        }
        print!("{}", report.snapshot().to_json_string());
    } else {
        for line in &report.outcome.output {
            println!("{line}");
        }
        eprintln!(
            "[hps] {} steps, {:.4} virtual seconds, {} open<->hidden interactions",
            report.outcome.steps,
            ExecConfig::new().cost_model.to_seconds(report.outcome.cost),
            report.interactions
        );
    }
    Ok(())
}

fn cmd_split(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "usage: hps split <file.ml> [selection flags] [--budget PCT[%]] \
[--harden] [--json] [--args ints...]";
    let path = args.first().ok_or(USAGE)?;
    let rest = &args[1..];
    let mut budget: Option<f64> = None;
    let mut harden = false;
    let mut json = false;
    let mut selection: Vec<String> = Vec::new();
    let mut ints: Vec<String> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--budget" => {
                let v = rest.get(i + 1).ok_or("--budget needs a percentage")?;
                budget = Some(
                    v.trim_end_matches('%')
                        .parse::<f64>()
                        .map_err(|_| format!("bad budget `{v}`"))?,
                );
                i += 2;
            }
            "--harden" => {
                harden = true;
                i += 1;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--args" => {
                ints.extend(rest[i + 1..].iter().cloned());
                break;
            }
            flag @ ("--func" | "--var" | "--global" | "--class") => {
                selection.push(rest[i].clone());
                selection.push(
                    rest.get(i + 1)
                        .ok_or_else(|| format!("{flag} needs a name"))?
                        .clone(),
                );
                i += 2;
            }
            "--auto" => {
                selection.push(rest[i].clone());
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`; {USAGE}")),
        }
    }
    let program = load(path)?;
    // --args only matters to the planner's measurer, so it selects planner
    // mode too — the legacy dump would silently ignore it.
    if budget.is_none() && !harden && !json && ints.is_empty() {
        // Legacy mode: dump the split itself.
        let split = do_split(&program, &selection)?;
        println!("==== open program (Of) ====");
        print!("{}", hps::ir::pretty::program_to_string(&split.open));
        println!("==== hidden program (Hf) ====");
        print!("{}", split.hidden.summary());
        println!("==== report ====");
        for r in &split.reports {
            println!(
                "fn {}: {} hidden vars ({} fully), {} slice stmts, {} ILPs",
                split.open.func(r.func).name,
                r.hidden_vars.len(),
                r.hidden_vars.iter().filter(|(_, f)| *f).count(),
                r.slice_stmts,
                r.ilps.len()
            );
        }
        return Ok(());
    }

    // Planner mode: budget-aware split with optional auto-hardening; the
    // measurer runs original vs. batched split on the given entry args.
    let entry_args = int_args(&ints)?;
    let mut planner = hps::audit::Planner::new(&program).harden(harden);
    if selection.iter().any(|s| s != "--auto") {
        planner = planner.targets(parse_selection(&program, &selection)?);
    }
    if let Some(b) = budget {
        planner = planner.budget(b);
    }
    let measure_args = entry_args.clone();
    planner = planner.measure_with(move |prog, split| {
        use hps::runtime::telemetry::metrics::names;
        let before = hps::runtime::run_program(prog, &measure_args).map_err(|e| e.to_string())?;
        let rtt = ExecConfig::new().cost_model.lan_round_trip();
        let after = Executor::new(&split.open, &split.hidden)
            .batching(true)
            .rtt(rtt)
            .recorder(MetricsRecorder::new())
            .run(&measure_args)
            .map_err(|e| e.to_string())?;
        if before.output != after.outcome.output {
            return Err("outputs diverged between original and split".into());
        }
        Ok(hps::security::MeasuredCost {
            base_units: before.cost,
            split_units: after.outcome.cost,
            rtt_units: after.telemetry.counter(names::RTT_COST_UNITS),
            server_units: after.telemetry.counter(names::SERVER_COST_UNITS),
            interactions: after.interactions,
        })
    });
    let report = planner.plan().map_err(|e| e.to_string())?;
    if json {
        println!("{}", hps::audit::plan_to_json(&report).pretty());
    } else {
        print!("{}", hps::audit::render_plan(&report));
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: hps analyze <file.ml> [flags]")?;
    let program = load(path)?;
    let split = do_split(&program, &args[1..])?;
    let report = hps::security::analyze_split(&program, &split);
    println!(
        "{:<26} {:<14} {:>8} {:>7}  CC",
        "function", "AC type", "inputs", "degree"
    );
    for (func, complexities) in &report.per_func {
        let name = &split.open.func(*func).name;
        for c in complexities {
            let inputs = match c.ac.inputs.count() {
                Some(n) => n.to_string(),
                None => "varying".into(),
            };
            println!(
                "{:<26} {:<14} {:>8} {:>7}  {}",
                name,
                c.ac.ty.to_string(),
                inputs,
                c.ac.degree,
                c.cc
            );
        }
    }
    let counts = report.counts_by_type();
    println!(
        "\ntotals: {} ILPs — Constant {}, Linear {}, Polynomial {}, Rational {}, Arbitrary {}",
        report.total(),
        counts[0],
        counts[1],
        counts[2],
        counts[3],
        counts[4]
    );
    Ok(())
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .ok_or("usage: hps audit <file.ml> [flags] [--json | --sarif | --effects]")?;
    let rest = &args[1..];
    let json = rest.iter().any(|a| a == "--json");
    let sarif = rest.iter().any(|a| a == "--sarif");
    let effects = rest.iter().any(|a| a == "--effects");
    let flags: Vec<String> = rest
        .iter()
        .filter(|a| *a != "--json" && *a != "--sarif" && *a != "--effects")
        .cloned()
        .collect();
    let program = load(path)?;
    let split = do_split(&program, &flags)?;
    if effects {
        print!(
            "{}",
            hps::audit::render::effects_to_json(&program, &split, path).pretty()
        );
        return Ok(());
    }
    let report = hps::audit::audit_split(&program, &split);
    if sarif {
        print!("{}", hps::audit::render::to_sarif(&report, path).pretty());
    } else if json {
        print!("{}", hps::audit::render::to_json(&report, path).pretty());
    } else {
        print!("{}", hps::audit::render::render_pretty(&report, path));
    }
    if report.has_deny() {
        return Err(format!(
            "audit found {} deny-level finding(s)",
            report.count(hps::audit::Severity::Deny)
        ));
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "usage: hps serve <file.ml> <addr> [flags] [--shards N] [--no-vm] \
                         [--no-memo] [--chaos SEED] [--metrics ADDR] [--journal-dir DIR]";
    let path = args.first().ok_or(USAGE)?;
    let addr = args.get(1).ok_or(USAGE)?;
    let rest = &args[2..];
    let mut chaos = None;
    let mut metrics_addr = None;
    let mut journal_dir = None;
    let mut shards = 1usize;
    let mut no_vm = false;
    let mut no_memo = false;
    let mut flags = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        if rest[i] == "--chaos" {
            let seed = rest
                .get(i + 1)
                .ok_or("--chaos needs a seed")?
                .parse::<u64>()
                .map_err(|_| "--chaos seed must be an integer".to_string())?;
            chaos = Some(ChaosConfig {
                seed,
                kill_per_mille: 100,
            });
            i += 2;
        } else if rest[i] == "--metrics" {
            metrics_addr = Some(rest.get(i + 1).ok_or("--metrics needs an address")?.clone());
            i += 2;
        } else if rest[i] == "--journal-dir" {
            journal_dir = Some(
                rest.get(i + 1)
                    .ok_or("--journal-dir needs a directory")?
                    .clone(),
            );
            i += 2;
        } else if rest[i] == "--no-vm" {
            no_vm = true;
            i += 1;
        } else if rest[i] == "--no-memo" {
            no_memo = true;
            i += 1;
        } else if rest[i] == "--shards" {
            shards = rest
                .get(i + 1)
                .ok_or("--shards needs a count")?
                .parse::<usize>()
                .map_err(|_| "--shards must be a positive integer".to_string())?;
            if shards == 0 {
                return Err("--shards must be at least 1".into());
            }
            i += 2;
        } else {
            flags.push(rest[i].clone());
            i += 1;
        }
    }
    let program = load(path)?;
    let split = do_split(&program, &flags)?;
    let mut server = SessionServer::bind(addr.as_str(), split.hidden.clone())
        .map_err(|e| e.to_string())?
        .with_shards(shards);
    if no_vm {
        server = server.with_fragment_vm(false);
    }
    if no_memo {
        server = server.with_fragment_memo(false);
    }
    if let Some(dir) = journal_dir {
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create journal dir {dir}: {e}"))?;
        eprintln!("[hps] journaling sessions to {dir} (survives restart)");
        server = server.with_journal_dir(dir);
    }
    if let Some(c) = chaos {
        eprintln!("[hps] chaos mode: killing ~10% of frames (seed {})", c.seed);
        server = server.with_chaos(c);
    }
    if let Some(maddr) = metrics_addr {
        let bound = spawn_metrics_endpoint(&maddr, server.handle().map_err(|e| e.to_string())?)?;
        eprintln!("[hps] metrics (Prometheus text format) on http://{bound}/metrics");
    }
    eprintln!(
        "[hps] serving {} hidden component(s) on {} ({} shard{}; multi-client sessions; ctrl-c to stop)",
        split.hidden.components.len(),
        server.local_addr().map_err(|e| e.to_string())?,
        shards,
        if shards == 1 { "" } else { "s" }
    );
    server
        .serve(|peer, event| eprintln!("[hps] {peer}: {event}"))
        .map_err(|e| e.to_string())
}

/// Serves the session server's live counters as Prometheus text format
/// (content-type `text/plain; version=0.0.4`) over a minimal HTTP/1.0
/// responder. Every request gets the full exposition regardless of path —
/// the registry is tiny and scrapes are idempotent reads of atomics.
fn spawn_metrics_endpoint(addr: &str, handle: SessionServerHandle) -> Result<SocketAddr, String> {
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| format!("cannot bind metrics endpoint {addr}: {e}"))?;
    let bound = listener.local_addr().map_err(|e| e.to_string())?;
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            // Drain (best effort) the request head; we answer any request.
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            let body = handle.metrics().to_prometheus();
            let response = format!(
                "HTTP/1.0 200 OK\r\n\
                 Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                 Content-Length: {}\r\n\
                 Connection: close\r\n\r\n{}",
                body.len(),
                body
            );
            let _ = stream.write_all(response.as_bytes());
        }
    });
    Ok(bound)
}

fn cmd_client(args: &[String]) -> Result<(), String> {
    const USAGE: &str =
        "usage: hps client <file.ml> <addr> [flags] [--batch] [--retry] [--timeout MS] [--args ints]";
    let path = args.first().ok_or(USAGE)?;
    let addr = args.get(1).ok_or(USAGE)?;
    let rest = &args[2..];
    let (flags, entry): (&[String], &[String]) = match rest.iter().position(|a| a == "--args") {
        Some(i) => (&rest[..i], &rest[i + 1..]),
        None => (rest, &[]),
    };
    let batch = flags.iter().any(|a| a == "--batch");
    let mut retry = flags.iter().any(|a| a == "--retry");
    let mut timeout_ms = None;
    let mut selection = Vec::new();
    let mut i = 0;
    while i < flags.len() {
        if flags[i] == "--timeout" {
            let ms = flags
                .get(i + 1)
                .ok_or("--timeout needs a millisecond count")?
                .parse::<u64>()
                .ok()
                .filter(|&ms| ms > 0)
                .ok_or("--timeout must be a positive integer (milliseconds)")?;
            timeout_ms = Some(ms);
            // The per-call deadline lives in the reliable transport.
            retry = true;
            i += 2;
        } else {
            if flags[i] != "--batch" && flags[i] != "--retry" {
                selection.push(flags[i].clone());
            }
            i += 1;
        }
    }
    let program = load(path)?;
    let split = do_split(&program, &selection)?;
    let entry_args = int_args(entry)?;
    let mut channel = if retry {
        let policy =
            RetryPolicy::new().with_call_deadline(timeout_ms.map(std::time::Duration::from_millis));
        TcpChannel::connect_reliable(addr.as_str(), policy).map_err(|e| e.to_string())?
    } else {
        TcpChannel::connect(addr.as_str()).map_err(|e| e.to_string())?
    };
    let meta = SplitMeta::derive(&split.open, &split.hidden);
    let outcome = {
        let mut interp = Interp::new(&split.open, ExecConfig::new().with_batching(batch))
            .with_channel(&mut channel, &meta);
        interp.run("main", &entry_args).map_err(|e| e.to_string())?
    };
    for line in &outcome.output {
        println!("{line}");
    }
    let interactions = hps::runtime::Channel::interactions(&channel);
    let stats = hps::runtime::Channel::transport_stats(&channel);
    channel.shutdown().map_err(|e| e.to_string())?;
    eprintln!("[hps] {interactions} open<->hidden interactions");
    if retry {
        eprintln!(
            "[hps] transport: {} retries, {} reconnects, {} faults",
            stats.retries, stats.reconnects, stats.faults
        );
    }
    Ok(())
}
