// A licensing-fee computation whose pricing rule is worth hiding: the
// hidden slice keeps the rate formula on the secure side, the open side
// only sees the accumulated totals.
//
//   hps audit examples/fee.ml --func fee --var rate

fn fee(seats: int, months: int) -> int {
    var rate: int = seats * 3 + 7;
    var total: int = 0;
    var m: int = 0;
    while (m < months) {
        total = total + rate;
        m = m + 1;
    }
    return total;
}

fn main(seats: int, months: int) {
    print(fee(seats, months));
}
