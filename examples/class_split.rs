//! Splitting object-oriented software (§2.2): "we can view the class
//! fields as globals and class methods as functions … Every time a class
//! instance is created by the open component, a unique *instance id* is
//! assigned to this instance", and the hidden side keeps one copy of the
//! hidden fields per instance.
//!
//! ```text
//! cargo run --example class_split
//! ```

use hiding_program_slices as hps;
use hps::runtime::{run_program, Executor};
use hps::split::{split_program, SplitPlan};

const SOURCE: &str = r#"
    class Meter {
        total: int;
        peak: int;
        samples: int;
        fn record(v: int) {
            self.total = self.total + v;
            self.peak = max(self.peak, v);
            self.samples = self.samples + 1;
        }
        fn average() -> int {
            return self.total / max(self.samples, 1);
        }
        fn headroom(limit: int) -> int {
            return limit - self.peak;
        }
    }

    fn main() {
        var upstream: Meter = new Meter();
        var downstream: Meter = new Meter();
        var i: int = 0;
        while (i < 10) {
            upstream.record(i * 3 + 1);
            downstream.record(100 - i * 7);
            i = i + 1;
        }
        print(upstream.average());
        print(downstream.average());
        print(upstream.headroom(50));
        print(downstream.headroom(150));
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = hps::lang::parse(SOURCE)?;
    // Hide every scalar field of Meter; all three methods get sliced.
    let plan = SplitPlan::class(&program, "Meter")?;
    let split = split_program(&program, &plan)?;

    println!("=== hidden component (one per class; state per instance id) ===");
    println!("{}", split.hidden.summary());
    println!(
        "methods sliced: {:?}",
        split
            .reports
            .iter()
            .map(|r| &split.open.func(r.func).name)
            .collect::<Vec<_>>()
    );

    let original = run_program(&program, &[])?;
    let replay = Executor::new(&split.open, &split.hidden).run(&[])?;
    assert_eq!(original.output, replay.outcome.output);
    println!("\noutput (identical): {:?}", original.output);
    println!(
        "interactions: {} — two Meter instances kept apart by instance id",
        replay.interactions
    );
    Ok(())
}
