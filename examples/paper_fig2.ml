// The paper's Figure 2 function: hiding the slice of `a` in fn f.
// Split and audit with:
//
//   hps split  examples/paper_fig2.ml --func f --var a
//   hps audit  examples/paper_fig2.ml --func f --var a

fn f(x: int, y: int, z: int, b: int[]) -> int {
    var a: int;
    var i: int;
    var sum: int;
    a = 3 * x + y;
    b[0] = a;
    i = a;
    sum = 0;
    while (i < z) {
        sum = sum + i;
        i = i + 1;
    }
    b[1] = sum;
    return sum;
}

fn main() {
    var b: int[] = new int[2];
    print(f(1, 2, 30, b));
    print(b[0]);
    print(b[1]);
}
