// Usage metering with a hidden billing curve. The seed `bucket` drives a
// piecewise (branching) tariff, so the hidden component keeps both the
// thresholds and the per-bucket coefficients; automatic selection
// (`--auto`, the default) picks the phase functions and seeds itself.
//
//   hps audit examples/metering.ml
//
// The surcharge constant is a deliberately weak leak kept for the demo —
// the @allow attribute below shows how to acknowledge an accepted finding
// without silencing the whole audit.

fn tariff(units: int) -> int {
    var bucket: int = 0;
    if (units > 100) {
        bucket = units * 5 - 40;
    } else {
        bucket = units * 2;
    }
    var bill: int = 0;
    var u: int = 0;
    while (u < units) {
        bill = bill + bucket;
        u = u + 10;
    }
    return bill;
}

fn surcharge(days: int) -> int {
    var flat: int = days * 11 + 3;
    @allow(weak_ilp_open_control)
    return flat;
}

fn main(units: int, days: int) {
    print(tariff(units));
    print(surcharge(days));
}
