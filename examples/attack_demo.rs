//! The adversary at work (§3 "Practical Limitations of Automated
//! Recovery"): wiretap the open↔hidden channel across many runs, then try
//! to reconstruct each fragment's function with the escalation ladder
//! (constant → linear → polynomial → rational).
//!
//! Expected outcome: the linear leak falls to regression, the quadratic
//! summation falls to polynomial interpolation (both as the paper
//! concedes), while the leak guarded by a hidden predicate resists every
//! technique in the ladder.
//!
//! ```text
//! cargo run --example attack_demo
//! ```

use hiding_program_slices as hps;
use hps::attack::{attack_trace, AttackConfig, Verdict};
use hps::runtime::{
    ExecConfig, InProcessChannel, Interp, RtValue, SecureServer, SplitMeta, Trace, TraceChannel,
};
use hps::split::{split_program, SplitPlan};

const TARGET: &str = r#"
    fn protected(x: int, y: int, z: int, b: int[]) -> int {
        var lin: int = 3 * x + y;           // linear in (x, y); leaked at b[0]
        b[0] = lin;
        var quad: int = lin * x + y * z;    // joins the slice: quadratic leak
        b[1] = quad;
        var gated: int = lin + 5;           // joins the slice
        if (gated % 3 == 0) {               // promoted: predicate + flow hidden
            gated = gated * 7 - y;
        } else {
            gated = gated + z * 11;
        }
        b[2] = gated;                       // path-dependent leak
        return lin + quad;
    }
    fn main(x: int, y: int, z: int) {
        var b: int[] = new int[3];
        print(protected(x, y, z, b));
        print(b[2]);
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = hps::lang::parse(TARGET)?;
    let plan = SplitPlan::single(&program, "protected", "lin")?;
    let split = split_program(&program, &plan)?;
    println!("hidden component:\n{}", split.hidden.summary());

    // The adversary observes many runs with different inputs.
    let mut trace = Trace::default();
    for run in 0..200u64 {
        let server = SecureServer::new(split.hidden.clone());
        let mut inner = InProcessChannel::new(server);
        let mut tap = TraceChannel::new(&mut inner);
        let meta = SplitMeta::derive(&split.open, &split.hidden);
        let mut interp = Interp::new(&split.open, ExecConfig::new()).with_channel(&mut tap, &meta);
        let (x, y, z) = (
            (run % 13) as i64 + 1,
            (run % 7) as i64 + 2,
            (run % 11) as i64 + 3,
        );
        interp.run("main", &[RtValue::Int(x), RtValue::Int(y), RtValue::Int(z)])?;
        drop(interp);
        let mut t = tap.into_trace();
        for e in &mut t.events {
            e.key += run * 1_000_000; // keep sessions distinct
        }
        trace.events.extend(t.events);
    }
    println!(
        "observed {} interactions across 200 runs\n",
        trace.events.len()
    );

    let outcomes = attack_trace(&trace, &AttackConfig::default());
    let mut recovered = 0;
    let mut resistant = 0;
    for o in &outcomes {
        match &o.verdict {
            Verdict::Recovered(m) => {
                recovered += 1;
                println!(
                    "fragment {}.{}: RECOVERED as {} model ({} samples)",
                    o.component, o.label, m.class, o.samples
                );
            }
            Verdict::Resistant { tried } => {
                resistant += 1;
                println!(
                    "fragment {}.{}: resisted {} hypothesis classes ({} samples)",
                    o.component,
                    o.label,
                    tried.len(),
                    o.samples
                );
            }
            Verdict::InsufficientData { observed, required } => {
                println!(
                    "fragment {}.{}: insufficient data ({observed}/{required})",
                    o.component, o.label
                );
            }
        }
    }
    println!("\nrecovered: {recovered}, resistant: {resistant}");
    assert!(recovered >= 2, "linear and quadratic leaks should fall");
    assert!(
        resistant >= 1,
        "the hidden-predicate leak should survive the ladder"
    );
    Ok(())
}
