//! The paper's deployment (§4.2): open and hidden components in separate
//! processes "that communicated over the local area network". Here the
//! secure server runs on a TCP listener (in a thread, standing in for the
//! second machine) and the open program drives it through the binary wire
//! protocol.
//!
//! ```text
//! cargo run --example tcp_split
//! ```

use hiding_program_slices as hps;
use hps::runtime::tcp::{serve_once, TcpChannel};
use hps::runtime::{run_program, Channel, ExecConfig, Interp, SecureServer, SplitMeta};
use hps::split::{split_program, SplitPlan};
use std::net::TcpListener;
use std::thread;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Protect the calcc benchmark's pipeline.
    let b = hps::suite::benchmark("calcc").expect("suite benchmark");
    let program = b.program()?;
    let plan = SplitPlan::single(&program, "weight_metric", "w")?
        .and_function(&program, "emit_len", "body")?;
    let split = split_program(&program, &plan)?;

    // "Secure machine": a TCP server holding only the hidden program.
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let hidden = split.hidden.clone();
    let server_thread = thread::spawn(move || {
        let mut server = SecureServer::new(hidden);
        serve_once(listener, &mut server)
    });

    // "Unsecure machine": runs the open program, knows only component
    // routing metadata, and reaches the fragments over the socket.
    let mut channel = TcpChannel::connect(addr)?;
    let meta = SplitMeta::derive(&split.open, &split.hidden);
    let input = b.workload(400, 7);
    let outcome = {
        let mut interp =
            Interp::new(&split.open, ExecConfig::new()).with_channel(&mut channel, &meta);
        interp.run("main", &[input])?
    };
    let interactions = channel.interactions();
    channel.shutdown()?;
    let served = server_thread.join().expect("server thread")?;

    println!("split output over TCP: {:?}", outcome.output);
    println!("interactions: {interactions} (server served {served})");

    // Cross-check against the unsplit program.
    let original = run_program(&program, &[b.workload(400, 7)])?;
    assert_eq!(original.output, outcome.output);
    println!("matches the unsplit program — full functionality requires the secure server.");
    Ok(())
}
