//! The paper's second scenario (§1, "Untrustworthy Server"): the user's
//! application executes on a remote compute server that cannot be trusted
//! not to pirate it. The *heavyweight open component* is shipped to the
//! server; the *lightweight hidden component* stays on the user's mobile
//! device. "Again while theft of open components is possible, the software
//! is protected by preventing the theft of hidden components."
//!
//! This example splits a route-pricing application, verifies the hidden
//! half is light enough for the paper's device classes
//! ([`DeviceProfile`]), and shows that nearly all computation stays on the
//! (untrusted) open side.
//!
//! ```text
//! cargo run --example mobile_scenario
//! ```

use hiding_program_slices as hps;
use hps::runtime::{run_program, Executor, RtValue};
use hps::split::{check_deployment, split_program, DeviceProfile, SplitPlan};

const APP: &str = r#"
    // Route pricing: the heavy work is scoring every segment of a route
    // (stays open, runs on the big server); the proprietary tariff model
    // is the hidden part (runs on the user's device).

    fn segment_score(d: int, grade: int) -> int {
        var s: int = d * (grade + 2);
        if (s > 1000) { s = 1000 + (s - 1000) / 4; }
        return s;
    }

    // The protected tariff: a scalar computation worth stealing.
    fn tariff(score: int, tier: int, distance: int) -> int {
        var base: int = tier * 11 + 7;
        var fee: int = base * 3;
        var k: int = base % 13;
        var bound: int = k + tier % 7 + 4;
        while (k < bound) {
            fee = fee + k * base;
            k = k + 1;
        }
        return fee + score / max(distance, 1);
    }

    fn main(input: int[]) {
        var total: int = 0;
        var dist: int = 0;
        var i: int = 0;
        var n: int = len(input);
        while (i + 1 < n) {
            total = total + segment_score(input[i], input[i + 1] % 5);
            dist = dist + input[i];
            i = i + 2;
        }
        print(total);
        print(tariff(total, 3, dist));
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = hps::lang::parse(APP)?;
    let plan = SplitPlan::single(&program, "tariff", "base")?;
    let split = split_program(&program, &plan)?;

    println!("hidden component (stays on the mobile device):");
    println!("{}", split.hidden.summary());

    // Does the hidden side fit the paper's device classes?
    for profile in [DeviceProfile::smart_card(), DeviceProfile::mobile_device()] {
        let check = check_deployment(&split.hidden, &profile);
        println!(
            "fits {:<13}: {}",
            check.device,
            if check.fits() { "yes" } else { "no" }
        );
        for v in &check.violations {
            println!("   - {v}");
        }
    }

    // The untrusted server does almost all the work.
    let input: Vec<i64> = (0..4000).map(|i| (i * 37) % 900 + 10).collect();
    let original = run_program(&program, &[RtValue::from_ints(&input)])?;
    let replay = Executor::new(&split.open, &split.hidden).run(&[RtValue::from_ints(&input)])?;
    assert_eq!(original.output, replay.outcome.output);

    let device = replay.server_cost as f64;
    let total = replay.outcome.cost as f64;
    println!(
        "\ndevice share of computation: {:.3}% ({} interactions)",
        device / total * 100.0,
        replay.interactions
    );
    assert!(
        device / total < 0.05,
        "hidden side must be lightweight in this scenario"
    );
    println!("output: {:?}", replay.outcome.output);
    Ok(())
}
