//! Quickstart: split a function into open and hidden components, inspect
//! both, and run the split program against an in-process secure server.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hiding_program_slices as hps;
use hps::runtime::{run_program, Executor};
use hps::split::{split_program, SplitPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        // A license-fee computation we want to protect.
        fn license_fee(seats: int, months: int, tier: int) -> int {
            var rate: int = tier * 7 + 3;
            var fee: int = 0;
            var m: int = 0;
            while (m < months) {
                fee = fee + rate * seats;
                m = m + 1;
            }
            if (fee > 10000) {
                fee = fee - fee / 10;
            }
            return fee;
        }
        fn main() {
            print(license_fee(25, 12, 2));
            print(license_fee(3, 6, 1));
        }
    "#;

    let program = hps::lang::parse(source)?;

    // Split `license_fee`, initiating the slice from `rate` (the paper's
    // §2.2 algorithm: forward data slice, hidden-variable growth, control
    // promotion).
    let plan = SplitPlan::single(&program, "license_fee", "rate")?;
    let split = split_program(&program, &plan)?;

    println!("=== open component (installed on the unsecure machine) ===");
    let fid = split.open.func_by_name("license_fee").expect("exists");
    println!(
        "{}",
        hps::ir::pretty::function_to_string(&split.open, split.open.func(fid))
    );

    println!("=== hidden component (installed on the secure device) ===");
    println!("{}", split.hidden.summary());

    let report = &split.reports[0];
    println!("hidden variables (fully hidden?):");
    for (var, fully) in &report.hidden_vars {
        println!("  {var:?}  fully={fully}");
    }
    println!("information leak points: {}", report.ilps.len());

    // Both versions behave identically.
    let original = run_program(&program, &[])?;
    let replay = Executor::new(&split.open, &split.hidden).run(&[])?;
    assert_eq!(original.output, replay.outcome.output);
    println!(
        "\noutput (identical for original and split): {:?}",
        original.output
    );
    println!("open<->hidden interactions: {}", replay.interactions);
    Ok(())
}
