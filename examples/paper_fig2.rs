//! The paper's worked example (Fig. 2 / Fig. 3): splitting function `f`
//! initiated with the slicing of variable `a`, then characterizing every
//! information leak point with the §3 complexity triples.
//!
//! The figure images are not available in our source of the paper; the
//! function is reconstructed from the prose: `a = 3x + y` (Fig. 3), the
//! definite leak `B[0] = a`, a summation loop with hidden bounds whose
//! leaked value is `sum + Σ_{i=3x+y}^{z-1} i` = ILP ④ with
//! `AC = <Polynomial, _, 2>` and `CC = <variable, hidden, hidden>`.
//!
//! ```text
//! cargo run --example paper_fig2
//! ```

use hiding_program_slices as hps;
use hps::runtime::{run_program, Executor};
use hps::security::analyze_split;
use hps::split::{split_program, SplitPlan};

const FIG2: &str = r#"
    fn f(x: int, y: int, z: int, b: int[]) -> int {
        var a: int;
        var i: int;
        var sum: int;
        a = 3 * x + y;
        b[0] = a;
        i = a;
        sum = 0;
        while (i < z) {
            sum = sum + i;
            i = i + 1;
        }
        b[1] = sum;
        return sum;
    }
    fn main() {
        var b: int[] = new int[2];
        print(f(1, 2, 30, b));
        print(b[0]);
        print(b[1]);
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = hps::lang::parse(FIG2)?;
    println!("=== original function f ===");
    let f = program.func_by_name("f").expect("exists");
    println!(
        "{}",
        hps::ir::pretty::function_to_annotated_string(&program, program.func(f))
    );

    let plan = SplitPlan::single(&program, "f", "a")?;
    let split = split_program(&program, &plan)?;
    let report = &split.reports[0];

    println!("=== slice of a (statements moved fully or partially to Hf) ===");
    println!("slice statements: {:?}", report.plan.slice);
    println!(
        "hidden variables: {:?}  (paper: a, i and sum are completely hidden)",
        report.hidden_vars
    );
    println!("promotions: {:?}", report.plan.promotions);

    println!("\n=== Of (open component) ===");
    let fo = split.open.func_by_name("f").expect("exists");
    println!(
        "{}",
        hps::ir::pretty::function_to_string(&split.open, split.open.func(fo))
    );
    println!("=== Hf (hidden component) ===");
    println!("{}", split.hidden.summary());

    println!("=== ILP characterization (paper §3) ===");
    let security = analyze_split(&program, &split);
    for c in security.iter() {
        let inputs = match c.ac.inputs.count() {
            Some(n) => n.to_string(),
            None => "varying".into(),
        };
        println!(
            "  ILP at {} ({:?}): AC = <{}, {}, {}>, CC = {}",
            c.ilp.stmt, c.ilp.kind, c.ac.ty, inputs, c.ac.degree, c.cc
        );
    }

    // Verify the headline characterizations from the paper's example.
    assert!(
        security
            .iter()
            .any(|c| c.ac.ty == hps::security::AcType::Linear && c.ac.degree == 1),
        "the definite leak of a = 3x + y is linear"
    );
    assert!(
        security
            .iter()
            .any(|c| c.ac.ty == hps::security::AcType::Polynomial
                && c.ac.degree == 2
                && c.cc.paths == hps::security::PathCount::Variable
                && c.cc.predicates_hidden
                && c.cc.flow_hidden),
        "ILP 4 (sum + sigma i) is <Polynomial, _, 2> / <variable, hidden, hidden>"
    );

    let original = run_program(&program, &[])?;
    let replay = Executor::new(&split.open, &split.hidden).run(&[])?;
    assert_eq!(original.output, replay.outcome.output);
    println!(
        "\nsplit verified equivalent; output = {:?}",
        original.output
    );
    Ok(())
}
